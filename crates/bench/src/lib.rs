//! Experiment harness shared by the per-figure binaries.
//!
//! Every binary accepts `--scale smoke|quick|paper` (default `quick`) and
//! `--seed N`, builds its runs through [`scaled_spec`], prints
//! human-readable tables, and writes machine-readable JSON under
//! `results/` — EXPERIMENTS.md is generated from those files.
//!
//! Scales: `smoke` is a seconds-long sanity pass, `quick` (default)
//! reproduces every curve's *shape* in minutes on one CPU core, and
//! `paper` uses the paper's task/client/round counts (hours; intended
//! for real hardware).

use fedknow_baselines::factory::MethodConfig;
use fedknow_data::DatasetSpec;
use fedknow_nn::ModelKind;
use fedknow_suite::RunSpec;
use serde::Serialize;
use std::path::PathBuf;

pub mod dash;
pub mod gate;

pub use gate::{
    compare, read_bench_record, write_bench_record, BenchRecord, ScaleStats, Tolerance,
};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: tiny structural sanity run.
    Smoke,
    /// Minutes: reduced counts, same curve shapes (default).
    Quick,
    /// The paper's counts (20+ clients, full task sequences).
    Paper,
}

impl Scale {
    /// The CLI name of this scale (inverse of [`Scale::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Parsed common CLI arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Selected scale.
    pub scale: Scale,
    /// Experiment seed.
    pub seed: u64,
    /// Optional comma-separated filter (dataset/model names) — binaries
    /// that iterate over a set honour it.
    pub only: Option<Vec<String>>,
    /// Optional transport backend: run over the actor runtime instead
    /// of the in-process simulator. Binaries that support it honour it.
    pub transport: Option<fedknow_fl::TransportKind>,
}

/// Parse `--scale`, `--seed`, `--only` and `--transport` from
/// `std::env::args`, with defaults. Exits with a usage message on
/// malformed input.
pub fn parse_args() -> Args {
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut only: Option<Vec<String>> = None;
    let mut transport: Option<fedknow_fl::TransportKind> = None;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = argv
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage("--scale expects smoke|quick|paper"));
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed expects an integer"));
            }
            "--only" => {
                i += 1;
                only = Some(
                    argv.get(i)
                        .unwrap_or_else(|| usage("--only expects a comma-separated list"))
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--transport" => {
                i += 1;
                transport = Some(
                    argv.get(i)
                        .and_then(|s| fedknow_fl::TransportKind::parse(s))
                        .unwrap_or_else(|| usage("--transport expects channel|tcp|unix")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    Args {
        scale,
        seed,
        only,
        transport,
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: <bin> [--scale smoke|quick|paper] [--seed N] [--only a,b,c] \
         [--transport channel|tcp|unix]"
    );
    std::process::exit(2)
}

/// The architecture the paper pairs with each dataset: SixCNN for
/// CIFAR-100 / FC100 / CORe50, ResNet-18 for Mini/TinyImageNet (§V-A).
pub fn paper_model_for(dataset: &str) -> ModelKind {
    match dataset {
        "miniimagenet" | "tinyimagenet" => ModelKind::ResNet18,
        _ => ModelKind::SixCnn,
    }
}

/// The paper's aggregation-round counts per dataset (§V-B: 15, 15, 15,
/// 10, 5).
pub fn paper_rounds_for(dataset: &str) -> usize {
    match dataset {
        "miniimagenet" => 10,
        "tinyimagenet" => 5,
        _ => 15,
    }
}

/// Build a [`RunSpec`] for a dataset at the given scale.
pub fn scaled_spec(base: DatasetSpec, scale: Scale, seed: u64) -> RunSpec {
    let name = base.name.clone();
    let model = paper_model_for(&name);
    let (dataset, clients, rounds, iters) = match scale {
        Scale::Smoke => (base.scaled(0.25, 8).with_tasks(2), 2, 2, 4),
        Scale::Quick => (base.scaled(1.2, 8).with_tasks(4), 4, 3, 8),
        Scale::Paper => {
            let rounds = paper_rounds_for(&name);
            (base, 20, rounds, 25)
        }
    };
    RunSpec {
        dataset,
        model,
        width: 1.0,
        num_clients: clients,
        rounds_per_task: rounds,
        iters_per_round: iters,
        seed,
        method_cfg: MethodConfig::default(),
        faults: fedknow_fl::FaultConfig::default(),
    }
}

/// Write a serialisable result to `results/<name>.json` (repo-relative,
/// falling back to the current directory).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialise result");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[written] {}", path.display());
}

/// Locate the `results/` directory next to the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR of this crate is <repo>/crates/bench.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Print a fixed-width table: header plus rows of (label, values).
pub fn print_table(title: &str, columns: &[String], rows: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{:<16}", "");
    for c in columns {
        print!("{c:>12}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<16}");
        for v in values {
            print!("{v:>12.4}");
        }
        println!();
    }
}

/// Human-readable nanoseconds: picks s/ms/µs/ns.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Format a metric sample with the unit its name implies: `*_ns`
/// metrics are durations, anything else (e.g. `qp.iters`) is a plain
/// number.
pub fn fmt_metric(name: &str, value: u64) -> String {
    if name.ends_with("_ns") {
        fmt_ns(value)
    } else {
        value.to_string()
    }
}

/// Print a run's [`fedknow_fl::PhaseBreakdown`] as a per-phase summary
/// table — the single reporting path the bench binaries share with
/// `obs_report`. Phase shares are relative to the `span.run_ns` wall
/// time; with parallel clients the phase totals can legitimately sum to
/// more than 100%.
pub fn print_phase_breakdown(b: &fedknow_fl::PhaseBreakdown) {
    let wall = b.phase("span.run_ns").map(|p| p.total_ns).unwrap_or(0);
    println!("\n== phase breakdown (wall {}) ==", fmt_ns(wall));
    println!(
        "{:<28}{:>10}{:>12}{:>12}{:>12}{:>12}{:>8}",
        "phase", "count", "total", "mean", "p50", "p99", "share"
    );
    let mut phases: Vec<_> = b
        .phases
        .iter()
        .filter(|p| !p.name.starts_with("span."))
        .collect();
    phases.sort_by_key(|p| std::cmp::Reverse(p.total_ns));
    for p in phases {
        let share = if wall > 0 && p.name.ends_with("_ns") {
            format!("{:.1}%", 100.0 * p.total_ns as f64 / wall as f64)
        } else {
            "-".to_string()
        };
        println!(
            "{:<28}{:>10}{:>12}{:>12}{:>12}{:>12}{:>8}",
            p.name,
            p.count,
            fmt_metric(&p.name, p.total_ns),
            fmt_metric(&p.name, p.mean_ns as u64),
            fmt_metric(&p.name, p.p50_ns),
            fmt_metric(&p.name, p.p99_ns),
            share,
        );
    }
    if !b.counters.is_empty() {
        println!("{:<28}{:>10}", "counter", "total");
        for (name, v) in &b.counters {
            println!("{name:<28}{v:>10}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn paper_pairings_match_section_va() {
        assert_eq!(paper_model_for("cifar100"), ModelKind::SixCnn);
        assert_eq!(paper_model_for("core50"), ModelKind::SixCnn);
        assert_eq!(paper_model_for("miniimagenet"), ModelKind::ResNet18);
        assert_eq!(paper_model_for("tinyimagenet"), ModelKind::ResNet18);
        assert_eq!(paper_rounds_for("cifar100"), 15);
        assert_eq!(paper_rounds_for("miniimagenet"), 10);
        assert_eq!(paper_rounds_for("tinyimagenet"), 5);
    }

    #[test]
    fn paper_scale_keeps_full_structure() {
        let s = scaled_spec(DatasetSpec::tiny_imagenet(), Scale::Paper, 1);
        assert_eq!(s.dataset.num_tasks, 20);
        assert_eq!(s.num_clients, 20);
        assert_eq!(s.iters_per_round, 25);
    }

    #[test]
    fn quick_scale_shrinks() {
        let s = scaled_spec(DatasetSpec::cifar100(), Scale::Quick, 1);
        assert!(s.dataset.num_tasks <= 4);
        assert!(s.num_clients <= 4);
        assert_eq!(s.dataset.height, 8);
    }

    #[test]
    fn results_dir_points_into_repo() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}

/// One method's curves from a finished run — the unit every figure's
/// JSON output is built from.
#[derive(Debug, Clone, Serialize)]
pub struct MethodCurve {
    /// Method name.
    pub method: String,
    /// Average accuracy over learned tasks, per task step.
    pub accuracy: Vec<f64>,
    /// Average forgetting rate, per task step.
    pub forgetting: Vec<f64>,
    /// Cumulative simulated training time (compute + comm), seconds.
    pub cumulative_time: Vec<f64>,
    /// Total simulated communication seconds.
    pub comm_seconds: f64,
    /// Total bytes on the wire.
    pub total_bytes: u64,
    /// Clients that dropped out (OOM).
    pub dropouts: usize,
}

impl MethodCurve {
    /// Summarise a simulation report.
    pub fn from_report(r: &fedknow_fl::SimReport) -> Self {
        Self {
            method: r.method.clone(),
            accuracy: r.accuracy.accuracy_curve(),
            forgetting: r.accuracy.forgetting_curve(),
            cumulative_time: r.cumulative_time(),
            comm_seconds: r.total_comm_seconds(),
            total_bytes: r.total_bytes,
            dropouts: r.dropouts.len(),
        }
    }

    /// Final average accuracy.
    pub fn final_accuracy(&self) -> f64 {
        *self.accuracy.last().unwrap_or(&0.0)
    }
}
