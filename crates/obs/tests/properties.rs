//! Property and concurrency tests for the observability layer:
//! histogram quantiles against a sorted-vector oracle, counter
//! atomicity under concurrent writers, span nesting, and the JSONL
//! round-trip into the aggregator.

use fedknow_obs::event::{CountEvent, SampleEvent, SpanEnd};
use fedknow_obs::{Aggregate, Event, JsonlSink, LogHistogram, Registry, Sink};
use proptest::prelude::*;

/// Exact nearest-rank quantile over raw samples — the oracle the
/// histogram estimate is checked against.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles track the exact order statistic within the
    /// sub-bucket relative error bound (~2%) at every probed q.
    #[test]
    fn quantiles_match_sorted_oracle(
        small in prop::collection::vec(0u64..1024, 1..200),
        large in prop::collection::vec(1u64..u64::MAX / 2, 0..200),
        q in 0.01f64..1.0,
    ) {
        let h = LogHistogram::new();
        let mut all: Vec<u64> = small.iter().chain(&large).copied().collect();
        for &v in &all {
            h.record(v);
        }
        all.sort_unstable();
        let s = h.snapshot();
        prop_assert_eq!(s.count(), all.len() as u64);
        prop_assert_eq!(s.min(), all[0]);
        prop_assert_eq!(s.max(), *all.last().unwrap());
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, q] {
            let exact = oracle_quantile(&all, q) as f64;
            let est = s.quantile(q) as f64;
            // The estimate's bucket contains the exact order statistic,
            // so mid-point error is bounded by half the bucket width
            // (1/32 relative) plus integer rounding.
            prop_assert!(
                (est - exact).abs() <= exact * (1.0 / 32.0) + 1.0,
                "q={} est={} exact={}", q, est, exact
            );
        }
    }

    /// Histogram sum/mean are exact regardless of bucketing.
    #[test]
    fn sums_are_exact(values in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let exact: u64 = values.iter().sum();
        prop_assert_eq!(s.sum(), exact);
        let mean = exact as f64 / values.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-9);
    }
}

#[test]
fn counters_are_atomic_under_concurrent_writers() {
    let registry = Registry::new();
    let threads = 8usize;
    let per_thread = 10_000u64;
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                let c = registry.counter("concurrent.total");
                for _ in 0..per_thread {
                    c.add(1);
                }
                // Half the threads also exercise name-based lookup.
                registry.add("concurrent.lookup", 2);
            });
        }
    })
    .expect("worker thread panicked");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counters["concurrent.total"],
        threads as u64 * per_thread
    );
    assert_eq!(snap.counters["concurrent.lookup"], threads as u64 * 2);
}

#[test]
fn histograms_lose_nothing_under_concurrent_writers() {
    let registry = Registry::new();
    let threads = 8u64;
    let per_thread = 5_000u64;
    let registry = &registry;
    crossbeam::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move |_| {
                let h = registry.hist("concurrent.lat_ns");
                for i in 0..per_thread {
                    h.record(t * 1000 + i);
                }
            });
        }
    })
    .expect("worker thread panicked");
    let s = registry.snapshot().hists["concurrent.lat_ns"].clone();
    assert_eq!(s.count(), threads * per_thread);
}

/// Span nesting and cross-thread path inheritance. Uses the global
/// facade, which this test enables for the whole process — safe here
/// because this integration test binary runs in its own process and
/// every other test in this file uses instance APIs.
#[test]
fn spans_nest_and_inherit_across_threads() {
    fedknow_obs::enable();
    let before = fedknow_obs::snapshot().unwrap();
    {
        let _run = fedknow_obs::span("t_run");
        let _task = fedknow_obs::span("t_task");
        assert_eq!(fedknow_obs::current_path(), "t_run/t_task");
        let parent = fedknow_obs::current_path();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = fedknow_obs::inherit_path(&parent);
                    let _c = fedknow_obs::span("t_client");
                    assert_eq!(fedknow_obs::current_path(), "t_run/t_task/t_client");
                });
            }
        });
        // The parent thread's stack is untouched by the workers.
        assert_eq!(fedknow_obs::current_path(), "t_run/t_task");
    }
    assert_eq!(fedknow_obs::current_path(), "");
    let diff = fedknow_obs::snapshot().unwrap().since(&before);
    assert_eq!(diff.hists["span.t_client_ns"].count(), 4);
    assert_eq!(diff.hists["span.t_task_ns"].count(), 1);
    assert_eq!(diff.hists["span.t_run_ns"].count(), 1);
}

#[test]
fn jsonl_roundtrips_into_aggregate() {
    let events = vec![
        Event::Span(SpanEnd {
            path: "run".into(),
            dur_ns: 500,
            thread: "ThreadId(1)".into(),
            perf: None,
        }),
        Event::Span(SpanEnd {
            path: "run/task.0".into(),
            dur_ns: 200,
            thread: "ThreadId(1)".into(),
            perf: Some(fedknow_obs::SpanPerf {
                flops: 4000,
                bytes: 2000,
                allocs: 1,
                alloc_bytes: 64,
            }),
        }),
        Event::Count(CountEvent {
            name: "comm.upload_bytes".into(),
            delta: 4096,
        }),
        Event::Count(CountEvent {
            name: "comm.upload_bytes".into(),
            delta: 1024,
        }),
        Event::Sample(SampleEvent {
            name: "qp.solve_ns".into(),
            value: 42,
        }),
        Event::Sample(SampleEvent {
            name: "qp.solve_ns".into(),
            value: 58,
        }),
        Event::Sample(SampleEvent {
            name: "qp.iters".into(),
            value: 17,
        }),
    ];

    let path = std::env::temp_dir().join(format!("fedknow_obs_rt_{}.jsonl", std::process::id()));
    let sink = JsonlSink::create(&path).unwrap();
    for e in &events {
        sink.emit(e);
    }
    sink.flush();

    let back = fedknow_obs::read_jsonl(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back, events);

    let agg = Aggregate::from_events(&back);
    assert_eq!(agg, Aggregate::from_events(&events));
    assert_eq!(agg.counters["comm.upload_bytes"], 5120);
    assert_eq!(agg.samples["qp.solve_ns"], vec![42, 58]);
    assert_eq!(agg.spans["run"].total_ns, 500);
    assert_eq!(agg.spans["run/task.0"].flops, 4000);
    assert_eq!(agg.spans["run/task.0"].allocs, 1);
    assert_eq!(agg.quantile("qp.iters", 0.5), Some(17));
}

/// Corrupt JSONL input errors instead of silently dropping data.
#[test]
fn jsonl_reader_rejects_garbage() {
    let path = std::env::temp_dir().join(format!("fedknow_obs_bad_{}.jsonl", std::process::id()));
    std::fs::write(
        &path,
        "{\"Count\":{\"name\":\"x\",\"delta\":1}}\nnot json\n",
    )
    .unwrap();
    let err = fedknow_obs::read_jsonl(&path);
    std::fs::remove_file(&path).ok();
    assert!(err.is_err());
}
