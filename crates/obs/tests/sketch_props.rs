//! Property tests for the mergeable quantile sketch: merge order must
//! not matter (commutative + associative up to the bucket maps), and
//! quantile estimates must stay within the sketch's relative
//! rank-error guarantee against an exact sorted-vector oracle on
//! constant, bimodal, and heavy-tailed inputs.

use fedknow_obs::{QuantileSketch, DEFAULT_ALPHA};
use proptest::prelude::*;

/// Exact nearest-rank quantile over raw samples.
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new(DEFAULT_ALPHA);
    for &v in values {
        s.insert(v);
    }
    s
}

/// Assert the estimate is within the sketch's relative-error bound of
/// the exact order statistic. DDSketch guarantees relative error alpha
/// per bucket; the nearest-rank oracle can sit anywhere inside the
/// matched bucket, so allow 2·alpha plus slack for the bucket the rank
/// lands next to.
fn assert_within_rank_error(est: f64, exact: f64, what: &str) -> Result<(), TestCaseError> {
    let tol = 3.0 * DEFAULT_ALPHA * exact.abs() + 1e-9;
    prop_assert!(
        (est - exact).abs() <= tol,
        "{what}: estimate {est} vs exact {exact} (tol {tol})"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging A into B and B into A produce identical sketches:
    /// same count, sum, and quantiles at every probed q.
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(1e-3f64..1e6, 0..200),
        b in prop::collection::vec(1e-3f64..1e6, 0..200),
    ) {
        let (sa, sb) = (sketch_of(&a), sketch_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.sum() - ba.sum()).abs() <= 1e-6 * ab.sum().abs().max(1.0));
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ab.quantile(q).to_bits(), ba.quantile(q).to_bits());
        }
    }

    /// (A ∪ B) ∪ C equals A ∪ (B ∪ C): the fold order across shards
    /// never changes what the combined sketch reports.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(1e-3f64..1e6, 0..120),
        b in prop::collection::vec(1e-3f64..1e6, 0..120),
        c in prop::collection::vec(1e-3f64..1e6, 0..120),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        for q in [0.01, 0.5, 0.99] {
            prop_assert_eq!(left.quantile(q).to_bits(), right.quantile(q).to_bits());
        }
    }

    /// Merging shards of one stream matches sketching the whole
    /// stream: the split point is invisible in every quantile.
    #[test]
    fn sharded_merge_matches_single_sketch(
        values in prop::collection::vec(1e-3f64..1e6, 1..300),
        split in 0usize..300,
    ) {
        let cut = split.min(values.len());
        let mut merged = sketch_of(&values[..cut]);
        merged.merge(&sketch_of(&values[cut..]));
        let whole = sketch_of(&values);
        prop_assert_eq!(merged.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile(q).to_bits(), whole.quantile(q).to_bits());
        }
    }

    /// Constant streams: every quantile is the constant itself, within
    /// relative error.
    #[test]
    fn constant_distribution_quantiles(
        v in 1e-3f64..1e9,
        n in 1usize..500,
        q in 0.01f64..1.0,
    ) {
        let s = sketch_of(&vec![v; n]);
        assert_within_rank_error(s.quantile(q), v, "constant")?;
    }

    /// Bimodal streams (two well-separated modes): quantiles on either
    /// side of the mass split land on the right mode.
    #[test]
    fn bimodal_distribution_quantiles(
        lo in 1f64..10.0,
        hi_mult in 100f64..10_000.0,
        n_lo in 10usize..200,
        n_hi in 10usize..200,
        q in 0.01f64..1.0,
    ) {
        let hi = lo * hi_mult;
        let mut values: Vec<f64> = Vec::with_capacity(n_lo + n_hi);
        values.extend(std::iter::repeat_n(lo, n_lo));
        values.extend(std::iter::repeat_n(hi, n_hi));
        let s = sketch_of(&values);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = oracle_quantile(&values, q);
        assert_within_rank_error(s.quantile(q), exact, "bimodal")?;
    }

    /// Heavy-tailed streams (values spanning ~9 decades, generated as
    /// exp-distributed exponents): relative error holds even where
    /// adjacent ranks differ by orders of magnitude.
    #[test]
    fn heavy_tailed_distribution_quantiles(
        exponents in prop::collection::vec(0f64..9.0, 2..300),
        q in 0.01f64..1.0,
    ) {
        let mut values: Vec<f64> = exponents.iter().map(|e| 10f64.powf(*e)).collect();
        let s = sketch_of(&values);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = oracle_quantile(&values, q);
        assert_within_rank_error(s.quantile(q), exact, "heavy-tailed")?;
    }
}
