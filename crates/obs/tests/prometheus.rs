//! Exposition-format coverage: a golden-file test pinning the exact
//! Prometheus text a populated registry serialises to, a structural
//! validator over that text, and a loopback integration test of the
//! `/metrics` HTTP endpoint.

use std::io::{Read, Write};
use std::net::TcpStream;

use fedknow_obs::{prometheus_text, MetricsServer, Registry};

/// The fixture registry behind the golden file.
fn populated_registry() -> Registry {
    let r = Registry::new();
    r.add("comm.upload_bytes", 1234);
    r.add("qp.fallback", 2);
    r.set_gauge("fl.update_divergence", 0.5);
    r.record("qp.solve_ns", 100);
    r.record("qp.solve_ns", 200);
    r.push_series("integrate.rotation", 0, 0.25);
    r.push_series("integrate.rotation", 0, 0.75);
    r.push_series("integrate.rotation", 1, 0.5);
    r
}

#[test]
fn golden_exposition() {
    let text = prometheus_text(&populated_registry().snapshot());
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        text, golden,
        "exposition drifted from tests/golden/metrics.prom — \
         update the golden file if the change is intentional"
    );
}

/// Fixture behind the sketch/cohort golden file: a quantile sketch
/// over a known distribution plus a client-keyed cohorted metric
/// (8 clients, so with the default 64 cohorts the mapping is the
/// identity and the output is environment-independent).
fn sketched_registry() -> Registry {
    let r = Registry::new();
    for i in 1..=100 {
        r.record_sketch("round.time_s", i as f64 / 100.0);
    }
    for client in 0..8u64 {
        r.record_client("client.compute_s", client, (client + 1) as f64);
        r.record_client("client.compute_s", client, (client + 1) as f64 * 3.0);
    }
    r
}

#[test]
fn golden_sketch_exposition() {
    let text = prometheus_text(&sketched_registry().snapshot());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/sketch.prom");
        std::fs::write(path, &text).expect("rewrite golden");
    }
    let golden = include_str!("golden/sketch.prom");
    assert_eq!(
        text, golden,
        "sketch exposition drifted from tests/golden/sketch.prom — \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn sketch_exposition_is_structurally_valid() {
    validate_exposition(&prometheus_text(&sketched_registry().snapshot()));
}

/// Structural check of the exposition format: every line is a comment
/// (`# HELP`/`# TYPE` with a valid metric name and known type) or a
/// sample (`name[{labels}] value`), each family has exactly one
/// HELP+TYPE pair, and samples belong to the family declared above.
fn validate_exposition(text: &str) {
    fn valid_name(n: &str) -> bool {
        !n.is_empty()
            && n.chars().next().unwrap().is_ascii_alphabetic()
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut current_family: Option<String> = None;
    let mut seen_families = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "line {ln}: unknown comment keyword {keyword:?}"
            );
            assert!(valid_name(name), "line {ln}: bad metric name {name:?}");
            if keyword == "HELP" {
                assert!(
                    seen_families.insert(name.to_string()),
                    "line {ln}: duplicate family {name}"
                );
                current_family = Some(name.to_string());
            } else {
                assert_eq!(
                    current_family.as_deref(),
                    Some(name),
                    "line {ln}: TYPE must follow its HELP"
                );
                let ty = parts.next().unwrap_or("");
                assert!(
                    ["counter", "gauge", "summary", "histogram", "untyped"].contains(&ty),
                    "line {ln}: unknown type {ty:?}"
                );
            }
            continue;
        }
        // Sample line: name or name{labels}, then a float value.
        let (name_part, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("line {ln}: no value separator in {line:?}"));
        let base = name_part.split('{').next().unwrap();
        assert!(valid_name(base), "line {ln}: bad sample name {base:?}");
        let family = current_family.as_deref().expect("sample before any family");
        assert!(
            base == family || base == format!("{family}_sum") || base == format!("{family}_count"),
            "line {ln}: sample {base} outside family {family}"
        );
        if let Some(labels) = name_part.strip_prefix(base) {
            if !labels.is_empty() {
                assert!(
                    labels.starts_with('{') && labels.ends_with('}'),
                    "line {ln}: malformed labels {labels:?}"
                );
                for pair in labels[1..labels.len() - 1].split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .unwrap_or_else(|| panic!("line {ln}: bad label {pair:?}"));
                    assert!(valid_name(k), "line {ln}: bad label name {k:?}");
                    assert!(
                        v.starts_with('"') && v.ends_with('"'),
                        "line {ln}: unquoted label value {v:?}"
                    );
                }
            }
        }
        assert!(
            value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
            "line {ln}: unparseable value {value:?}"
        );
    }
    assert!(!seen_families.is_empty(), "no metric families at all");
}

#[test]
fn golden_exposition_is_structurally_valid() {
    validate_exposition(&prometheus_text(&populated_registry().snapshot()));
}

#[test]
fn metrics_endpoint_serves_parseable_exposition_over_loopback() {
    // Populate the process-global registry, then scrape it.
    fedknow_obs::enable();
    fedknow_obs::count("loopback.scrapes", 3);
    fedknow_obs::record("loopback.latency_ns", 42);
    fedknow_obs::gauge("loopback.gauge", 1.5);
    fedknow_obs::series_at("loopback.series", 7, 0.25);

    let server = MetricsServer::serve("127.0.0.1:0").expect("bind loopback");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");

    let (headers, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    assert!(
        headers.starts_with("HTTP/1.1 200 OK"),
        "unexpected status: {headers}"
    );
    assert!(
        headers.contains("Content-Type: text/plain; version=0.0.4"),
        "missing exposition content type: {headers}"
    );
    assert!(body.contains("fedknow_loopback_scrapes 3"), "{body}");
    assert!(body.contains("fedknow_loopback_gauge 1.5"), "{body}");
    assert!(
        body.contains("fedknow_loopback_series{round=\"7\"} 0.25"),
        "{body}"
    );
    validate_exposition(body);

    // Anything but /metrics is a 404, and the server survives to serve
    // the next scrape.
    let mut stream = TcpStream::connect(server.local_addr()).expect("reconnect");
    write!(stream, "GET /other HTTP/1.1\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    let mut stream = TcpStream::connect(server.local_addr()).expect("reconnect 2");
    write!(stream, "GET /metrics HTTP/1.1\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
}
