//! Event sinks and the JSONL reader/aggregator.
//!
//! The in-memory aggregator is the [`Registry`](crate::registry::Registry)
//! itself; this module adds the optional JSONL file sink (one event per
//! line) and the reverse direction: reading a JSONL stream back into an
//! [`Aggregate`] with exact per-metric sample sets, used by the
//! `obs_report` binary and the round-trip tests.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::event::Event;

/// A destination for observability events.
pub trait Sink: Send + Sync {
    /// Deliver one event.
    fn emit(&self, event: &Event);
    /// Flush any buffered output.
    fn flush(&self) {}
}

/// Appends one JSON object per event to a file (JSONL).
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("event serialises");
        let mut w = self.writer.lock();
        // Ignore write errors: observability must never take down a run.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

/// Read every event from a JSONL file. Unparseable lines are an error
/// (the file format is fully under this crate's control).
pub fn read_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", i + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Per-span-path totals within an [`Aggregate`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total nanoseconds across them.
    pub total_ns: u64,
    /// Total kernel FLOPs attributed to spans at this path.
    pub flops: u64,
    /// Total kernel bytes moved attributed to spans at this path.
    pub bytes: u64,
    /// Total heap allocations attributed (0 without `FEDKNOW_PROF_ALLOC`).
    pub allocs: u64,
    /// Total bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl SpanStat {
    /// Achieved GFLOP/s across the spans at this path, if any kernel
    /// work was attributed.
    pub fn gflops_per_sec(&self) -> Option<f64> {
        (self.flops > 0 && self.total_ns > 0).then(|| self.flops as f64 / self.total_ns as f64)
    }
}

/// An exact aggregation of an event stream: counter totals, raw
/// histogram samples (sorted), per-path span totals, last-written
/// gauges, and series points in index order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Aggregate {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// All samples per histogram metric, sorted ascending.
    pub samples: BTreeMap<String, Vec<u64>>,
    /// Span totals by hierarchical path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Series points `(index, value)` by name, index-sorted (ties in
    /// stream order).
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl Aggregate {
    /// Aggregate an event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut agg = Aggregate::default();
        for e in events {
            match e {
                Event::Count(c) => *agg.counters.entry(c.name.clone()).or_insert(0) += c.delta,
                Event::Sample(s) => agg.samples.entry(s.name.clone()).or_default().push(s.value),
                Event::Span(s) => {
                    let stat = agg.spans.entry(s.path.clone()).or_default();
                    stat.count += 1;
                    stat.total_ns += s.dur_ns;
                    if let Some(p) = &s.perf {
                        stat.flops += p.flops;
                        stat.bytes += p.bytes;
                        stat.allocs += p.allocs;
                        stat.alloc_bytes += p.alloc_bytes;
                    }
                }
                Event::Gauge(g) => {
                    agg.gauges.insert(g.name.clone(), g.value);
                }
                Event::Point(p) => agg
                    .series
                    .entry(p.name.clone())
                    .or_default()
                    .push((p.index, p.value)),
            }
        }
        for v in agg.samples.values_mut() {
            v.sort_unstable();
        }
        for v in agg.series.values_mut() {
            v.sort_by_key(|&(i, _)| i);
        }
        agg
    }

    /// Total of a counter, or 0 if it was never incremented — fault
    /// counters (`fl.crashes`, `fl.retries`, ...) are absent from clean
    /// runs, and "absent" means zero, not missing data.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Exact nearest-rank quantile over a metric's samples.
    pub fn quantile(&self, name: &str, q: f64) -> Option<u64> {
        let xs = self.samples.get(name)?;
        if xs.is_empty() {
            return None;
        }
        let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        Some(xs[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CountEvent, GaugeEvent, PointEvent, SampleEvent, SpanEnd};

    fn sample(name: &str, value: u64) -> Event {
        Event::Sample(SampleEvent {
            name: name.into(),
            value,
        })
    }

    #[test]
    fn aggregate_totals_and_quantiles() {
        let mut events = vec![
            Event::Count(CountEvent {
                name: "bytes".into(),
                delta: 4,
            }),
            Event::Count(CountEvent {
                name: "bytes".into(),
                delta: 6,
            }),
            Event::Span(SpanEnd {
                path: "run".into(),
                dur_ns: 50,
                thread: "t".into(),
                perf: None,
            }),
            Event::Span(SpanEnd {
                path: "run".into(),
                dur_ns: 70,
                thread: "t".into(),
                perf: Some(crate::event::SpanPerf {
                    flops: 140,
                    bytes: 64,
                    allocs: 2,
                    alloc_bytes: 256,
                }),
            }),
        ];
        for v in [5u64, 1, 9, 3, 7] {
            events.push(sample("lat", v));
        }
        let agg = Aggregate::from_events(&events);
        assert_eq!(agg.counters["bytes"], 10);
        assert_eq!(agg.counter("bytes"), 10);
        assert_eq!(agg.counter("never_touched"), 0);
        assert_eq!(
            agg.spans["run"],
            SpanStat {
                count: 2,
                total_ns: 120,
                flops: 140,
                bytes: 64,
                allocs: 2,
                alloc_bytes: 256,
            }
        );
        // 140 FLOPs over 120 ns: achieved GFLOP/s is FLOPs/ns.
        let g = agg.spans["run"].gflops_per_sec().unwrap();
        assert!((g - 140.0 / 120.0).abs() < 1e-12);
        assert_eq!(agg.samples["lat"], vec![1, 3, 5, 7, 9]);
        assert_eq!(agg.quantile("lat", 0.5), Some(5));
        assert_eq!(agg.quantile("lat", 1.0), Some(9));
        assert_eq!(agg.quantile("missing", 0.5), None);
    }

    #[test]
    fn gauges_keep_last_and_series_sort_by_index() {
        let events = vec![
            Event::Gauge(GaugeEvent {
                name: "g".into(),
                value: 1.0,
            }),
            Event::Gauge(GaugeEvent {
                name: "g".into(),
                value: 2.0,
            }),
            Event::Point(PointEvent {
                name: "s".into(),
                index: 5,
                value: 0.5,
            }),
            Event::Point(PointEvent {
                name: "s".into(),
                index: 2,
                value: 0.25,
            }),
        ];
        let agg = Aggregate::from_events(&events);
        assert_eq!(agg.gauges["g"], 2.0);
        assert_eq!(agg.series["s"], vec![(2, 0.25), (5, 0.5)]);
    }
}
