//! Event sinks and the JSONL reader/aggregator.
//!
//! The in-memory aggregator is the [`Registry`](crate::registry::Registry)
//! itself; this module adds the optional JSONL file sink (one event per
//! line) and the reverse direction: reading a JSONL stream back into an
//! [`Aggregate`] with exact per-metric sample sets, used by the
//! `obs_report` binary and the round-trip tests.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::event::Event;

/// Environment variable capping the JSONL sink's file size, in MiB.
/// When the current file crosses the cap it is rotated to `<path>.1`
/// (replacing any previous rotation) and a fresh file is started, so a
/// run keeps at most the newest ~2x cap of events on disk. Unset or
/// `0` = unbounded (the historical behaviour).
pub const ENV_MAX_MB: &str = "FEDKNOW_OBS_MAX_MB";

/// A destination for observability events.
pub trait Sink: Send + Sync {
    /// Deliver one event.
    fn emit(&self, event: &Event);
    /// Flush any buffered output.
    fn flush(&self) {}
}

struct SinkInner {
    writer: BufWriter<File>,
    bytes: u64,
}

/// Appends one JSON object per event to a file (JSONL), with optional
/// size-capped rotation (see [`ENV_MAX_MB`]).
pub struct JsonlSink {
    inner: Mutex<SinkInner>,
    path: PathBuf,
    max_bytes: Option<u64>,
}

impl JsonlSink {
    /// Create (truncating) the file at `path`, honouring
    /// `FEDKNOW_OBS_MAX_MB` from the environment.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let max_bytes = std::env::var(ENV_MAX_MB)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&mb| mb > 0)
            .map(|mb| mb * 1024 * 1024);
        Self::with_max_bytes(path, max_bytes)
    }

    /// Create (truncating) the file at `path` with an explicit size
    /// cap in bytes (`None` = unbounded).
    pub fn with_max_bytes(path: impl AsRef<Path>, max_bytes: Option<u64>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self {
            inner: Mutex::new(SinkInner {
                writer: BufWriter::new(file),
                bytes: 0,
            }),
            path,
            max_bytes,
        })
    }

    /// The path rotated-out events move to: `<path>.1`.
    pub fn rotated_path(path: impl AsRef<Path>) -> PathBuf {
        let mut name = path.as_ref().as_os_str().to_os_string();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Rotate the current file to `<path>.1` and start a fresh one.
    /// Accounting goes registry-only (`obs.sink_rotations`,
    /// `obs.sink_rotated_bytes`): emitting events here would re-enter
    /// the sink being rotated.
    fn rotate(&self, g: &mut SinkInner) {
        let _ = g.writer.flush();
        let rotated = g.bytes;
        let _ = std::fs::rename(&self.path, Self::rotated_path(&self.path));
        match File::create(&self.path) {
            Ok(f) => {
                g.writer = BufWriter::new(f);
                g.bytes = 0;
                crate::count_in_registry("obs.sink_rotations", 1);
                crate::count_in_registry("obs.sink_rotated_bytes", rotated);
            }
            Err(e) => {
                // Keep writing through the old handle (now pointing at
                // the renamed file): observability must never take
                // down a run.
                eprintln!(
                    "fedknow-obs: cannot recreate {} after rotation: {e}",
                    self.path.display()
                );
            }
        }
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("event serialises");
        let mut g = self.inner.lock();
        // Ignore write errors: observability must never take down a run.
        let _ = writeln!(g.writer, "{line}");
        g.bytes += line.len() as u64 + 1;
        if let Some(max) = self.max_bytes {
            if g.bytes >= max {
                self.rotate(&mut g);
            }
        }
    }

    fn flush(&self) {
        let _ = self.inner.lock().writer.flush();
    }
}

/// Read every event from a JSONL file. Unparseable lines are an error
/// (the file format is fully under this crate's control).
pub fn read_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::from_str(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", i + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// Per-span-path totals within an [`Aggregate`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total nanoseconds across them.
    pub total_ns: u64,
    /// Total kernel FLOPs attributed to spans at this path.
    pub flops: u64,
    /// Total kernel bytes moved attributed to spans at this path.
    pub bytes: u64,
    /// Total heap allocations attributed (0 without `FEDKNOW_PROF_ALLOC`).
    pub allocs: u64,
    /// Total bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl SpanStat {
    /// Achieved GFLOP/s across the spans at this path, if any kernel
    /// work was attributed.
    pub fn gflops_per_sec(&self) -> Option<f64> {
        (self.flops > 0 && self.total_ns > 0).then(|| self.flops as f64 / self.total_ns as f64)
    }
}

/// An exact aggregation of an event stream: counter totals, raw
/// histogram samples (sorted), per-path span totals, last-written
/// gauges, and series points in index order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Aggregate {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// All samples per histogram metric, sorted ascending.
    pub samples: BTreeMap<String, Vec<u64>>,
    /// Span totals by hierarchical path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Series points `(index, value)` by name, index-sorted (ties in
    /// stream order).
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl Aggregate {
    /// Aggregate an event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut agg = Aggregate::default();
        for e in events {
            match e {
                Event::Count(c) => *agg.counters.entry(c.name.clone()).or_insert(0) += c.delta,
                Event::Sample(s) => agg.samples.entry(s.name.clone()).or_default().push(s.value),
                Event::Span(s) => {
                    let stat = agg.spans.entry(s.path.clone()).or_default();
                    stat.count += 1;
                    stat.total_ns += s.dur_ns;
                    if let Some(p) = &s.perf {
                        stat.flops += p.flops;
                        stat.bytes += p.bytes;
                        stat.allocs += p.allocs;
                        stat.alloc_bytes += p.alloc_bytes;
                    }
                }
                Event::Gauge(g) => {
                    agg.gauges.insert(g.name.clone(), g.value);
                }
                Event::Point(p) => agg
                    .series
                    .entry(p.name.clone())
                    .or_default()
                    .push((p.index, p.value)),
            }
        }
        for v in agg.samples.values_mut() {
            v.sort_unstable();
        }
        for v in agg.series.values_mut() {
            v.sort_by_key(|&(i, _)| i);
        }
        agg
    }

    /// Total of a counter, or 0 if it was never incremented — fault
    /// counters (`fl.crashes`, `fl.retries`, ...) are absent from clean
    /// runs, and "absent" means zero, not missing data.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Exact nearest-rank quantile over a metric's samples.
    pub fn quantile(&self, name: &str, q: f64) -> Option<u64> {
        let xs = self.samples.get(name)?;
        if xs.is_empty() {
            return None;
        }
        let rank = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        Some(xs[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CountEvent, GaugeEvent, PointEvent, SampleEvent, SpanEnd};

    fn count_event(delta: u64) -> Event {
        Event::Count(CountEvent {
            name: "rotate.c".into(),
            delta,
        })
    }

    #[test]
    fn capped_sink_rotates_keeping_newest() {
        let path =
            std::env::temp_dir().join(format!("fedknow_obs_rotate_{}.jsonl", std::process::id()));
        let rotated = JsonlSink::rotated_path(&path);
        let _ = std::fs::remove_file(&rotated);
        let line_len = serde_json::to_string(&count_event(0)).unwrap().len() as u64 + 1;
        // Cap at 10 lines' worth; write 25 -> two rotations.
        let sink = JsonlSink::with_max_bytes(&path, Some(10 * line_len)).unwrap();
        for i in 0..25u64 {
            sink.emit(&count_event(i));
        }
        sink.flush();
        // .1 holds the second batch of 10 (newest rotated file wins)…
        let old = read_jsonl(&rotated).unwrap();
        assert_eq!(old.len(), 10);
        let Event::Count(first) = &old[0] else {
            panic!("expected count")
        };
        assert_eq!(first.delta, 10);
        // …and the live file holds the newest 5.
        let new = read_jsonl(&path).unwrap();
        assert_eq!(new.len(), 5);
        let Event::Count(last) = &new[4] else {
            panic!("expected count")
        };
        assert_eq!(last.delta, 24);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn uncapped_sink_never_rotates() {
        let path =
            std::env::temp_dir().join(format!("fedknow_obs_norotate_{}.jsonl", std::process::id()));
        let rotated = JsonlSink::rotated_path(&path);
        let _ = std::fs::remove_file(&rotated);
        let sink = JsonlSink::with_max_bytes(&path, None).unwrap();
        for i in 0..100u64 {
            sink.emit(&count_event(i));
        }
        sink.flush();
        assert_eq!(read_jsonl(&path).unwrap().len(), 100);
        assert!(!rotated.exists());
        let _ = std::fs::remove_file(&path);
    }

    fn sample(name: &str, value: u64) -> Event {
        Event::Sample(SampleEvent {
            name: name.into(),
            value,
        })
    }

    #[test]
    fn aggregate_totals_and_quantiles() {
        let mut events = vec![
            Event::Count(CountEvent {
                name: "bytes".into(),
                delta: 4,
            }),
            Event::Count(CountEvent {
                name: "bytes".into(),
                delta: 6,
            }),
            Event::Span(SpanEnd {
                path: "run".into(),
                dur_ns: 50,
                thread: "t".into(),
                perf: None,
            }),
            Event::Span(SpanEnd {
                path: "run".into(),
                dur_ns: 70,
                thread: "t".into(),
                perf: Some(crate::event::SpanPerf {
                    flops: 140,
                    bytes: 64,
                    allocs: 2,
                    alloc_bytes: 256,
                }),
            }),
        ];
        for v in [5u64, 1, 9, 3, 7] {
            events.push(sample("lat", v));
        }
        let agg = Aggregate::from_events(&events);
        assert_eq!(agg.counters["bytes"], 10);
        assert_eq!(agg.counter("bytes"), 10);
        assert_eq!(agg.counter("never_touched"), 0);
        assert_eq!(
            agg.spans["run"],
            SpanStat {
                count: 2,
                total_ns: 120,
                flops: 140,
                bytes: 64,
                allocs: 2,
                alloc_bytes: 256,
            }
        );
        // 140 FLOPs over 120 ns: achieved GFLOP/s is FLOPs/ns.
        let g = agg.spans["run"].gflops_per_sec().unwrap();
        assert!((g - 140.0 / 120.0).abs() < 1e-12);
        assert_eq!(agg.samples["lat"], vec![1, 3, 5, 7, 9]);
        assert_eq!(agg.quantile("lat", 0.5), Some(5));
        assert_eq!(agg.quantile("lat", 1.0), Some(9));
        assert_eq!(agg.quantile("missing", 0.5), None);
    }

    #[test]
    fn gauges_keep_last_and_series_sort_by_index() {
        let events = vec![
            Event::Gauge(GaugeEvent {
                name: "g".into(),
                value: 1.0,
            }),
            Event::Gauge(GaugeEvent {
                name: "g".into(),
                value: 2.0,
            }),
            Event::Point(PointEvent {
                name: "s".into(),
                index: 5,
                value: 0.5,
            }),
            Event::Point(PointEvent {
                name: "s".into(),
                index: 2,
                value: 0.25,
            }),
        ];
        let agg = Aggregate::from_events(&events);
        assert_eq!(agg.gauges["g"], 2.0);
        assert_eq!(agg.series["s"], vec![(2, 0.25), (5, 0.5)]);
    }
}
