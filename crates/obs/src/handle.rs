//! Pre-registered metric handles for hot-path instrumentation.
//!
//! [`crate::count`] and [`crate::record`] take a `&str` and walk the
//! registry's name map on every call. That lookup (a lock plus a
//! `BTreeMap` search) is noise for once-per-round metrics but real cost
//! inside the training loop. A handle is declared `static` at the
//! instrument site and resolves its registry slot **once**, the first
//! time it fires with observability enabled; every later hit is the
//! enabled check plus one atomic.
//!
//! ```
//! use fedknow_obs::{CounterHandle, HistHandle};
//!
//! static FAST_PATH: CounterHandle = CounterHandle::new("qp.fast_path");
//! static SOLVE_NS: HistHandle = HistHandle::new("qp.solve_ns");
//!
//! fn solve() {
//!     let _t = SOLVE_NS.timer();
//!     FAST_PATH.add(1);
//! }
//! ```
//!
//! Handles keep full parity with the string API: they feed the same
//! registry slots (so `registry.counter(name)` sees the same totals)
//! and still emit JSONL events when a sink is attached — the sink path
//! allocates anyway, so nothing is saved by skipping it.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::event::{CountEvent, Event, SampleEvent};
use crate::hist::LogHistogram;
use crate::registry::Counter;
use crate::ring::RingData;

/// A named counter whose registry slot is resolved once.
pub struct CounterHandle {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl CounterHandle {
    /// Declare a handle (usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name this handle records under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `delta`. No-op (one relaxed load) when disabled.
    #[inline]
    pub fn add(&self, delta: u64) {
        if !crate::is_enabled() {
            return;
        }
        let s = crate::state();
        self.cell
            .get_or_init(|| s.registry.counter(self.name))
            .add(delta);
        if crate::ring::ring_enabled() {
            crate::ring::record(RingData::Count {
                name: self.name.to_string(),
                delta,
            });
        }
        if s.jsonl.is_some() {
            crate::dispatch(&Event::Count(CountEvent {
                name: self.name.to_string(),
                delta,
            }));
        }
    }
}

/// A named histogram whose registry slot is resolved once.
pub struct HistHandle {
    name: &'static str,
    cell: OnceLock<Arc<LogHistogram>>,
}

impl HistHandle {
    /// Declare a handle (usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name this handle records under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one value. No-op (one relaxed load) when disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::is_enabled() {
            return;
        }
        let s = crate::state();
        self.cell
            .get_or_init(|| s.registry.hist(self.name))
            .record(value);
        if crate::ring::ring_enabled() {
            crate::ring::record(RingData::Sample {
                name: self.name.to_string(),
                value,
            });
        }
        if s.jsonl.is_some() {
            crate::dispatch(&Event::Sample(SampleEvent {
                name: self.name.to_string(),
                value,
            }));
        }
    }

    /// RAII timer recording elapsed nanoseconds into this histogram on
    /// drop. Reads no clock when disabled.
    #[inline]
    pub fn timer(&self) -> HandleTimer<'_> {
        HandleTimer {
            handle: self,
            start: crate::is_enabled().then(Instant::now),
        }
    }
}

/// RAII guard from [`HistHandle::timer`].
#[must_use = "dropping a HandleTimer immediately records a zero-length phase; bind it to a variable"]
pub struct HandleTimer<'a> {
    handle: &'a HistHandle,
    start: Option<Instant>,
}

impl Drop for HandleTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.handle.record(start.elapsed().as_nanos() as u64);
        }
    }
}

// Handle behaviour is covered by the facade lifecycle test in
// `lib.rs`: the enable/disable sequencing is process-global, so all
// global-state coverage lives in that single test.
