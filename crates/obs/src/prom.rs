//! Prometheus text exposition (format version 0.0.4) of a
//! [`MetricsSnapshot`].
//!
//! Mapping:
//!
//! * counters → `counter`
//! * histograms → `summary` (`quantile="0.5"` / `"0.99"` samples from
//!   the log-bucketed estimate, plus exact `_sum` and `_count`)
//! * quantile sketches → `summary` (`quantile="0.5"` / `"0.9"` /
//!   `"0.99"` from the relative-error sketch, plus exact `_sum` and
//!   `_count`)
//! * cohorts → `gauge` with a `cohort="<index>"` label (mean value per
//!   cohort), plus exact `_count` per cohort
//! * gauges → `gauge`
//! * series → `gauge` with a `round="<index>"` label; points sharing an
//!   index are averaged so every label set appears exactly once
//!
//! Metric names are prefixed `fedknow_` and sanitized to the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` alphabet (dots become underscores).
//! Output order is deterministic: metric families sorted by exposed
//! name, one `# HELP`/`# TYPE` pair each.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::registry::MetricsSnapshot;

/// Exposed metric name: `fedknow_` plus the registry name with every
/// character outside `[a-zA-Z0-9_:]` replaced by `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("fedknow_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a HELP string per the exposition format: backslash and
/// line-feed are the only escapable characters.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// A float in Prometheus syntax (`NaN`, `+Inf`, `-Inf` spelled out).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Serialise a snapshot as Prometheus text exposition.
pub fn write_prometheus(s: &MetricsSnapshot, out: &mut String) {
    // BTreeMap iteration gives stable registry-name order; sanitization
    // is monotonic for our `.`-separated names, so output is sorted.
    for (name, &v) in &s.counters {
        let n = sanitize_name(name);
        family(out, &n, "counter", &format!("FedKNOW counter {name}"));
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, &v) in &s.gauges {
        let n = sanitize_name(name);
        family(out, &n, "gauge", &format!("FedKNOW gauge {name}"));
        let _ = writeln!(out, "{n} {}", fmt_f64(v));
    }
    for (name, h) in &s.hists {
        let n = sanitize_name(name);
        family(
            out,
            &n,
            "summary",
            &format!("FedKNOW histogram {name} (log-bucketed, ~2% quantile error)"),
        );
        let _ = writeln!(out, "{n}{{quantile=\"0.5\"}} {}", h.quantile(0.5));
        let _ = writeln!(out, "{n}{{quantile=\"0.99\"}} {}", h.quantile(0.99));
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    for (name, sk) in &s.sketches {
        let n = sanitize_name(name);
        family(
            out,
            &n,
            "summary",
            &format!(
                "FedKNOW quantile sketch {name} (relative error {})",
                sk.alpha
            ),
        );
        for q in [0.5, 0.9, 0.99] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", fmt_f64(sk.quantile(q)));
        }
        let _ = writeln!(out, "{n}_sum {}", fmt_f64(sk.sum));
        let _ = writeln!(out, "{n}_count {}", sk.count);
    }
    for (name, cs) in &s.cohorts {
        let n = format!("{}_cohort", sanitize_name(name));
        family(
            out,
            &n,
            "gauge",
            &format!("FedKNOW cohorted client metric {name} (mean per cohort)"),
        );
        for c in &cs.cohorts {
            let _ = writeln!(out, "{n}{{cohort=\"{}\"}} {}", c.cohort, fmt_f64(c.mean()));
        }
        let nc = format!("{n}_count");
        family(
            out,
            &nc,
            "gauge",
            &format!("FedKNOW cohorted client metric {name} (count per cohort)"),
        );
        for c in &cs.cohorts {
            let _ = writeln!(out, "{nc}{{cohort=\"{}\"}} {}", c.cohort, c.count);
        }
    }
    for (name, points) in &s.series {
        let n = sanitize_name(name);
        family(
            out,
            &n,
            "gauge",
            &format!("FedKNOW per-round series {name} (mean per round)"),
        );
        for (round, mean) in mean_per_index(points) {
            let _ = writeln!(out, "{n}{{round=\"{round}\"}} {}", fmt_f64(mean));
        }
    }
}

/// Mean value per distinct index, index-sorted.
pub fn mean_per_index(points: &[(u64, f64)]) -> Vec<(u64, f64)> {
    let mut acc: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
    for &(i, v) in points {
        let e = acc.entry(i).or_insert((0.0, 0));
        e.0 += v;
        e.1 += 1;
    }
    acc.into_iter()
        .map(|(i, (sum, n))| (i, sum / n as f64))
        .collect()
}

/// A snapshot serialised to a fresh string.
pub fn prometheus_text(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    write_prometheus(s, &mut out);
    out
}

/// One-shot exposition of the **current** registry for offline runs:
/// writes the live snapshot (empty output while disabled) to `path`.
pub fn write_prometheus_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    let snap = crate::snapshot().unwrap_or_default();
    std::fs::write(path, prometheus_text(&snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized_with_prefix() {
        assert_eq!(sanitize_name("qp.solve_ns"), "fedknow_qp_solve_ns");
        assert_eq!(sanitize_name("a-b c:d"), "fedknow_a_b_c:d");
    }

    #[test]
    fn help_escaping() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    fn floats_use_prometheus_literals() {
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(0.25), "0.25");
    }

    #[test]
    fn mean_per_index_averages_ties() {
        let pts = vec![(1, 2.0), (0, 1.0), (1, 4.0)];
        assert_eq!(mean_per_index(&pts), vec![(0, 1.0), (1, 3.0)]);
    }
}
