//! Chrome `trace_event` JSON export of postmortem bundles and JSONL
//! event streams — loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! The timeline is laid out as one process (`pid` 1) with one track
//! per actor: `tid` 0 is the coordinator, `tid` `c + 1` is client `c`
//! (derived from the deepest `client.<c>` segment of a span path).
//!
//! * Span begin/end ring records become `B`/`E` duration events, so
//!   `run → task → round → client → phase` nest as slices. Ring
//!   truncation is repaired: an `End` whose `Begin` was overwritten
//!   becomes a complete `X` slice (its duration is known), and spans
//!   still open at dump time are closed at the bundle's last
//!   timestamp.
//! * Fault injections and verify violations become instant (`i`)
//!   events on the affected client's track / the coordinator track.
//! * Series points and gauges become counter (`C`) tracks; counter
//!   deltas are accumulated into running-total counter tracks.
//!
//! Timestamps are microseconds (fractional) since the recording
//! epoch. JSONL streams carry only span *ends*, so [`jsonl_to_trace`]
//! lays slices end-to-end per track with synthetic start offsets —
//! durations are exact, offsets are not; bundles are the
//! high-fidelity path.

use serde_json::{Number, Value};

/// The `pid` every track lives under.
const PID: u64 = 1;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn vs(s: &str) -> Value {
    Value::String(s.to_string())
}

fn vu(u: u64) -> Value {
    Value::Number(Number::U(u))
}

fn vf(f: f64) -> Value {
    Value::Number(Number::F(f))
}

/// Track id for a span path: the deepest `client.<c>` segment maps to
/// `c + 1`, everything else to the coordinator track 0.
pub fn tid_for_path(path: &str) -> u64 {
    path.rsplit('/')
        .find_map(|seg| {
            seg.strip_prefix("client.")
                .and_then(|c| c.parse::<u64>().ok())
        })
        .map_or(0, |c| c + 1)
}

fn leaf(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn track_name(tid: u64) -> String {
    if tid == 0 {
        "coordinator".to_string()
    } else {
        format!("client {}", tid - 1)
    }
}

/// Wrap emitted events in the trace envelope, prepending process/
/// thread-name metadata for every track seen.
fn finish(mut events: Vec<Value>, mut tids: Vec<u64>) -> Value {
    tids.sort_unstable();
    tids.dedup();
    let mut all: Vec<Value> = vec![obj(vec![
        ("name", vs("process_name")),
        ("ph", vs("M")),
        ("pid", vu(PID)),
        ("args", obj(vec![("name", vs("fedknow-sim"))])),
    ])];
    for tid in tids {
        all.push(obj(vec![
            ("name", vs("thread_name")),
            ("ph", vs("M")),
            ("pid", vu(PID)),
            ("tid", vu(tid)),
            ("args", obj(vec![("name", vs(&track_name(tid)))])),
        ]));
    }
    all.append(&mut events);
    obj(vec![
        ("traceEvents", Value::Array(all)),
        ("displayTimeUnit", vs("ms")),
    ])
}

struct Emitter {
    events: Vec<Value>,
    tids: Vec<u64>,
    /// Per-tid stack of open `B` paths (for balance repair).
    stacks: Vec<(u64, Vec<String>)>,
    /// Per-name running totals for `Count` records.
    totals: Vec<(String, u64)>,
    max_ts_us: f64,
}

impl Emitter {
    fn new() -> Self {
        Self {
            events: Vec::new(),
            tids: Vec::new(),
            stacks: Vec::new(),
            totals: Vec::new(),
            max_ts_us: 0.0,
        }
    }

    fn stack(&mut self, tid: u64) -> &mut Vec<String> {
        if let Some(i) = self.stacks.iter().position(|(t, _)| *t == tid) {
            return &mut self.stacks[i].1;
        }
        self.stacks.push((tid, Vec::new()));
        &mut self.stacks.last_mut().unwrap().1
    }

    fn push(&mut self, tid: u64, ev: Value) {
        self.tids.push(tid);
        self.events.push(ev);
    }

    fn see_ts(&mut self, ts_us: f64) {
        if ts_us > self.max_ts_us {
            self.max_ts_us = ts_us;
        }
    }

    fn begin(&mut self, ts_us: f64, round: u64, path: &str) {
        let tid = tid_for_path(path);
        self.see_ts(ts_us);
        self.stack(tid).push(path.to_string());
        self.push(
            tid,
            obj(vec![
                ("name", vs(leaf(path))),
                ("cat", vs("span")),
                ("ph", vs("B")),
                ("ts", vf(ts_us)),
                ("pid", vu(PID)),
                ("tid", vu(tid)),
                ("args", obj(vec![("path", vs(path)), ("round", vu(round))])),
            ]),
        );
    }

    fn emit_end(&mut self, tid: u64, ts_us: f64, name: &str) {
        self.push(
            tid,
            obj(vec![
                ("name", vs(name)),
                ("ph", vs("E")),
                ("ts", vf(ts_us)),
                ("pid", vu(PID)),
                ("tid", vu(tid)),
            ]),
        );
    }

    fn end(&mut self, ts_us: f64, path: &str, dur_ns: u64) {
        let tid = tid_for_path(path);
        self.see_ts(ts_us);
        let stack = self.stack(tid);
        match stack.iter().rposition(|p| p == path) {
            Some(pos) => {
                // Close any deeper spans whose `End` the ring lost.
                let orphans: Vec<String> = stack.drain(pos..).collect();
                for p in orphans.iter().skip(1).rev() {
                    let n = leaf(p).to_string();
                    self.emit_end(tid, ts_us, &n);
                }
                let n = leaf(path).to_string();
                self.emit_end(tid, ts_us, &n);
            }
            None => {
                // The matching `Begin` was overwritten by the ring
                // bound; the duration is still known, so emit a
                // self-contained complete slice.
                let dur_us = dur_ns as f64 / 1000.0;
                self.push(
                    tid,
                    obj(vec![
                        ("name", vs(leaf(path))),
                        ("cat", vs("span")),
                        ("ph", vs("X")),
                        ("ts", vf((ts_us - dur_us).max(0.0))),
                        ("dur", vf(dur_us)),
                        ("pid", vu(PID)),
                        ("tid", vu(tid)),
                        (
                            "args",
                            obj(vec![("path", vs(path)), ("truncated", Value::Bool(true))]),
                        ),
                    ]),
                );
            }
        }
    }

    fn instant(&mut self, ts_us: f64, tid: u64, name: &str, cat: &str, args: Value) {
        self.see_ts(ts_us);
        self.push(
            tid,
            obj(vec![
                ("name", vs(name)),
                ("cat", vs(cat)),
                ("ph", vs("i")),
                ("ts", vf(ts_us)),
                ("pid", vu(PID)),
                ("tid", vu(tid)),
                ("s", vs("t")),
                ("args", args),
            ]),
        );
    }

    fn counter(&mut self, ts_us: f64, name: &str, value: f64) {
        self.see_ts(ts_us);
        self.push(
            0,
            obj(vec![
                ("name", vs(name)),
                ("ph", vs("C")),
                ("ts", vf(ts_us)),
                ("pid", vu(PID)),
                ("tid", vu(0)),
                ("args", obj(vec![("value", vf(value))])),
            ]),
        );
    }

    fn count_delta(&mut self, ts_us: f64, name: &str, delta: u64) {
        let total = match self.totals.iter_mut().find(|(n, _)| n == name) {
            Some((_, t)) => {
                *t += delta;
                *t
            }
            None => {
                self.totals.push((name.to_string(), delta));
                delta
            }
        };
        self.counter(ts_us, name, total as f64);
    }

    /// Close spans still open at dump time at the last seen timestamp.
    fn close_open_spans(&mut self) {
        let ts = self.max_ts_us;
        let stacks = std::mem::take(&mut self.stacks);
        for (tid, stack) in stacks {
            for p in stack.iter().rev() {
                let n = leaf(p).to_string();
                self.emit_end(tid, ts, &n);
            }
        }
    }

    fn into_trace(mut self) -> Value {
        self.close_open_spans();
        finish(self.events, self.tids)
    }
}

fn ring_record_to_events(em: &mut Emitter, rec: &Value) -> Result<(), String> {
    let ts_ns = rec
        .get("ts_ns")
        .and_then(Value::as_u64)
        .ok_or("ring record without numeric `ts_ns`")?;
    let ts_us = ts_ns as f64 / 1000.0;
    let round = rec.get("round").and_then(Value::as_u64).unwrap_or(0);
    let data = rec.get("data").ok_or("ring record without `data`")?;
    let str_of = |v: &Value, key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("ring record missing string `{key}`"))
    };
    if let Some(b) = data.get("Begin") {
        em.begin(ts_us, round, &str_of(b, "path")?);
    } else if let Some(e) = data.get("End") {
        let dur = e.get("dur_ns").and_then(Value::as_u64).unwrap_or(0);
        em.end(ts_us, &str_of(e, "path")?, dur);
    } else if let Some(f) = data.get("Fault") {
        let client = f.get("client").and_then(Value::as_u64).unwrap_or(0);
        let detail = f.get("detail").and_then(Value::as_u64).unwrap_or(0);
        let kind = str_of(f, "kind")?;
        em.instant(
            ts_us,
            client + 1,
            &format!("fault.{kind}"),
            "fault",
            obj(vec![
                ("client", vu(client)),
                ("detail", vu(detail)),
                ("round", vu(round)),
            ]),
        );
    } else if let Some(v) = data.get("Violation") {
        let check = str_of(v, "check")?;
        let detail = str_of(v, "detail").unwrap_or_default();
        em.instant(
            ts_us,
            0,
            &format!("violation.{check}"),
            "verify",
            obj(vec![("detail", vs(&detail)), ("round", vu(round))]),
        );
    } else if let Some(n) = data.get("Note") {
        let note = str_of(n, "note")?;
        let short: String = note.chars().take(120).collect();
        em.instant(ts_us, 0, &short, "note", obj(vec![("round", vu(round))]));
    } else if let Some(p) = data.get("Point") {
        let value = p.get("value").and_then(Value::as_f64).unwrap_or(0.0);
        em.counter(ts_us, &str_of(p, "name")?, value);
    } else if let Some(g) = data.get("Gauge") {
        let value = g.get("value").and_then(Value::as_f64).unwrap_or(0.0);
        em.counter(ts_us, &str_of(g, "name")?, value);
    } else if let Some(c) = data.get("Count") {
        let delta = c.get("delta").and_then(Value::as_u64).unwrap_or(0);
        em.count_delta(ts_us, &str_of(c, "name")?, delta);
    }
    // `Sample` records are timing raw material, already summarised in
    // the bundle's histogram dump; they would only blur the timeline.
    Ok(())
}

/// Convert a parsed postmortem bundle into a Chrome trace value.
pub fn bundle_to_trace(bundle: &Value) -> Result<Value, String> {
    let tracks = bundle
        .get("tracks")
        .and_then(Value::as_array)
        .ok_or("not a postmortem bundle: no `tracks` array")?;
    // Merge all per-thread rings into one globally time-ordered
    // stream. The sort is stable, so equal timestamps keep each
    // ring's (causal) internal order.
    let mut recs: Vec<&Value> = Vec::new();
    for t in tracks {
        if let Some(events) = t.get("events").and_then(Value::as_array) {
            recs.extend(events.iter());
        }
    }
    recs.sort_by_key(|r| r.get("ts_ns").and_then(Value::as_u64).unwrap_or(0));
    let mut em = Emitter::new();
    for rec in recs {
        ring_record_to_events(&mut em, rec)?;
    }
    Ok(em.into_trace())
}

/// Convert a live JSONL event stream (the `FEDKNOW_OBS` sink format)
/// into a Chrome trace value. JSONL carries span *ends* only, so each
/// track's slices are laid end-to-end: durations are exact, start
/// offsets synthetic.
pub fn jsonl_to_trace(text: &str) -> Result<Value, String> {
    let mut em = Emitter::new();
    // Synthetic per-track clocks, µs.
    let mut clocks: Vec<(u64, f64)> = Vec::new();
    let clock = |clocks: &mut Vec<(u64, f64)>, tid: u64| -> f64 {
        match clocks.iter().find(|(t, _)| *t == tid) {
            Some((_, c)) => *c,
            None => {
                clocks.push((tid, 0.0));
                0.0
            }
        }
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not JSON: {e}", lineno + 1))?;
        if let Some(sp) = ev.get("Span") {
            let path = sp
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: Span without path", lineno + 1))?;
            let dur_us = sp.get("dur_ns").and_then(Value::as_u64).unwrap_or(0) as f64 / 1000.0;
            let tid = tid_for_path(path);
            let ts = clock(&mut clocks, tid);
            em.see_ts(ts + dur_us);
            em.push(
                tid,
                obj(vec![
                    ("name", vs(leaf(path))),
                    ("cat", vs("span")),
                    ("ph", vs("X")),
                    ("ts", vf(ts)),
                    ("dur", vf(dur_us)),
                    ("pid", vu(PID)),
                    ("tid", vu(tid)),
                    ("args", obj(vec![("path", vs(path))])),
                ]),
            );
            if let Some((_, c)) = clocks.iter_mut().find(|(t, _)| *t == tid) {
                *c += dur_us;
            }
        } else if let Some(p) = ev.get("Point") {
            let name = p.get("name").and_then(Value::as_str).unwrap_or("point");
            let value = p.get("value").and_then(Value::as_f64).unwrap_or(0.0);
            let ts = clock(&mut clocks, 0);
            em.counter(ts, name, value);
        } else if let Some(g) = ev.get("Gauge") {
            let name = g.get("name").and_then(Value::as_str).unwrap_or("gauge");
            let value = g.get("value").and_then(Value::as_f64).unwrap_or(0.0);
            let ts = clock(&mut clocks, 0);
            em.counter(ts, name, value);
        }
        // Count/Sample JSONL events are aggregate material; skipped.
    }
    Ok(em.into_trace())
}

/// Validation summary of a trace (see [`validate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total events, metadata included.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks carrying non-metadata events.
    pub tracks: usize,
    /// Duration slices (`B`/`E` pairs plus `X` events).
    pub slices: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Counter (`C`) events.
    pub counters: usize,
    /// Largest timestamp seen, µs.
    pub max_ts_us: f64,
}

/// Validate a Chrome trace value: envelope shape, known phase codes,
/// required fields, per-track monotonically non-decreasing `B`/`E`
/// timestamps, and balanced, name-matched `B`/`E` nesting. Returns
/// counting stats on success, the first problem found on failure.
pub fn validate(trace: &Value) -> Result<TraceStats, String> {
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("trace has no `traceEvents` array")?;
    let mut stats = TraceStats {
        events: events.len(),
        tracks: 0,
        slices: 0,
        instants: 0,
        counters: 0,
        max_ts_us: 0.0,
    };
    // Per-(pid, tid): open-B stack of names and the last B/E timestamp.
    let mut tracks: Vec<((u64, u64), Vec<String>, f64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing `ph`"))?;
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric `ts`"))?;
        if ts < 0.0 || !ts.is_finite() {
            return Err(at(&format!("bad timestamp {ts}")));
        }
        if ts > stats.max_ts_us {
            stats.max_ts_us = ts;
        }
        let pid = ev
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| at("missing `pid`"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| at("missing `tid`"))?;
        let key = (pid, tid);
        let slot = match tracks.iter().position(|(k, _, _)| *k == key) {
            Some(p) => p,
            None => {
                tracks.push((key, Vec::new(), 0.0));
                tracks.len() - 1
            }
        };
        let name = ev.get("name").and_then(Value::as_str);
        match ph {
            "B" | "E" => {
                let (_, stack, last_ts) = &mut tracks[slot];
                if ts < *last_ts {
                    return Err(at(&format!(
                        "track {key:?}: timestamp {ts} goes backwards (last {last_ts})"
                    )));
                }
                *last_ts = ts;
                if ph == "B" {
                    let name = name.ok_or_else(|| at("`B` without name"))?;
                    stack.push(name.to_string());
                    stats.slices += 1;
                } else {
                    let open = stack
                        .pop()
                        .ok_or_else(|| at(&format!("track {key:?}: `E` without open `B`")))?;
                    if let Some(n) = name {
                        if n != open {
                            return Err(at(&format!(
                                "track {key:?}: `E` named `{n}` closes `B` named `{open}`"
                            )));
                        }
                    }
                }
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| at("`X` without numeric `dur`"))?;
                if dur < 0.0 || !dur.is_finite() {
                    return Err(at(&format!("bad duration {dur}")));
                }
                name.ok_or_else(|| at("`X` without name"))?;
                stats.slices += 1;
            }
            "i" => {
                name.ok_or_else(|| at("`i` without name"))?;
                stats.instants += 1;
            }
            "C" => {
                name.ok_or_else(|| at("`C` without name"))?;
                ev.get("args")
                    .filter(|a| matches!(a, Value::Object(_)))
                    .ok_or_else(|| at("`C` without args object"))?;
                stats.counters += 1;
            }
            other => return Err(at(&format!("unknown phase `{other}`"))),
        }
    }
    for (key, stack, _) in &tracks {
        if let Some(open) = stack.last() {
            return Err(format!("track {key:?}: span `{open}` never closed"));
        }
    }
    stats.tracks = tracks.len();
    Ok(stats)
}

/// Top-`n` slice table: per span name, the occurrence count and total/
/// mean/max duration, ordered by total time, formatted for terminals.
pub fn summarize(trace: &Value, n: usize) -> Result<String, String> {
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("trace has no `traceEvents` array")?;
    // name -> (count, total_us, max_us)
    let mut agg: Vec<(String, u64, f64, f64)> = Vec::new();
    let mut add = |name: &str, dur: f64| match agg.iter_mut().find(|(n, ..)| n == name) {
        Some((_, c, t, m)) => {
            *c += 1;
            *t += dur;
            if dur > *m {
                *m = dur;
            }
        }
        None => agg.push((name.to_string(), 1, dur, dur)),
    };
    // B/E pairing per track mirrors the validator's stack walk.
    type OpenStack = Vec<(String, f64)>;
    let mut stacks: Vec<((u64, u64), OpenStack)> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        let ts = ev.get("ts").and_then(Value::as_f64).unwrap_or(0.0);
        let key = (
            ev.get("pid").and_then(Value::as_u64).unwrap_or(0),
            ev.get("tid").and_then(Value::as_u64).unwrap_or(0),
        );
        match ph {
            "X" => add(name, ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0)),
            "B" => {
                match stacks.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, s)) => s.push((name.to_string(), ts)),
                    None => stacks.push((key, vec![(name.to_string(), ts)])),
                };
            }
            "E" => {
                if let Some((_, s)) = stacks.iter_mut().find(|(k, _)| *k == key) {
                    if let Some((n, t0)) = s.pop() {
                        add(&n, ts - t0);
                    }
                }
            }
            _ => {}
        }
    }
    agg.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
        "slice", "count", "total ms", "mean ms", "max ms"
    ));
    for (name, count, total, max) in agg.iter().take(n) {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12.3} {:>12.3} {:>12.3}\n",
            name,
            count,
            total / 1000.0,
            total / 1000.0 / *count as f64,
            max / 1000.0
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_derive_from_deepest_client_segment() {
        assert_eq!(tid_for_path("run/task.0/round.1"), 0);
        assert_eq!(tid_for_path("run/task.0/round.1/client.3"), 4);
        assert_eq!(tid_for_path("run/client.2/restore"), 3);
        assert_eq!(tid_for_path("run/client.x"), 0);
        assert_eq!(tid_for_path(""), 0);
    }

    fn bundle_with(events: &str) -> Value {
        let json = format!(
            r#"{{"version":1,"reason":"unit","round":0,"context":[],
                "metrics":{{"counters":[],"gauges":[],"hists":[],"series":[]}},
                "tracks":[{{"thread":"ThreadId(1)","dropped":0,"events":[{events}]}}]}}"#
        );
        serde_json::from_str(&json).unwrap()
    }

    #[test]
    fn nested_spans_convert_to_balanced_begin_end() {
        let b = bundle_with(
            r#"{"ts_ns":1000,"round":0,"data":{"Begin":{"path":"run"}}},
               {"ts_ns":2000,"round":0,"data":{"Begin":{"path":"run/client.0"}}},
               {"ts_ns":5000,"round":0,"data":{"End":{"path":"run/client.0","dur_ns":3000}}},
               {"ts_ns":9000,"round":0,"data":{"End":{"path":"run","dur_ns":8000}}}"#,
        );
        let trace = bundle_to_trace(&b).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.tracks, 2, "coordinator + client 0");
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains(r#""ph":"B""#) && text.contains(r#""ph":"E""#));
    }

    #[test]
    fn faults_and_violations_become_instants_and_truncation_is_repaired() {
        let b = bundle_with(
            // `End` without its `Begin` (ring wrapped) + an open span
            // at dump time + a fault and a violation.
            r#"{"ts_ns":4000,"round":1,"data":{"End":{"path":"run/round.0","dur_ns":2500}}},
               {"ts_ns":5000,"round":1,"data":{"Begin":{"path":"run"}}},
               {"ts_ns":6000,"round":1,"data":{"Fault":{"client":2,"kind":"crash","detail":0}}},
               {"ts_ns":7000,"round":1,"data":{"Violation":{"check":"qp.kkt","detail":"residual"}}}"#,
        );
        let trace = bundle_to_trace(&b).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.slices, 2, "one X repair + one auto-closed B");
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains("fault.crash"));
        assert!(text.contains("violation.qp.kkt"));
        assert!(
            text.contains(r#""ph":"X""#),
            "truncated End becomes X: {text}"
        );
    }

    #[test]
    fn counters_accumulate_deltas() {
        let b = bundle_with(
            r#"{"ts_ns":1000,"round":0,"data":{"Count":{"name":"comm.upload_bytes","delta":10}}},
               {"ts_ns":2000,"round":0,"data":{"Count":{"name":"comm.upload_bytes","delta":5}}},
               {"ts_ns":3000,"round":0,"data":{"Point":{"name":"fl.participation","index":0,"value":0.75}}}"#,
        );
        let trace = bundle_to_trace(&b).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.counters, 3);
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains(r#""value":15.0"#), "running total: {text}");
    }

    #[test]
    fn validator_rejects_unbalanced_and_backwards_traces() {
        let lone_e: Value = serde_json::from_str(
            r#"{"traceEvents":[{"name":"x","ph":"E","ts":1.0,"pid":1,"tid":0}]}"#,
        )
        .unwrap();
        assert!(validate(&lone_e).unwrap_err().contains("without open"));
        let backwards: Value = serde_json::from_str(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":5.0,"pid":1,"tid":0},
                {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":0}]}"#,
        )
        .unwrap();
        assert!(validate(&backwards).unwrap_err().contains("backwards"));
        let unclosed: Value = serde_json::from_str(
            r#"{"traceEvents":[{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0}]}"#,
        )
        .unwrap();
        assert!(validate(&unclosed).unwrap_err().contains("never closed"));
    }

    #[test]
    fn jsonl_conversion_lays_slices_per_track() {
        let jsonl = r#"{"Span":{"path":"run/client.0/train","dur_ns":4000,"thread":"ThreadId(2)"}}
{"Span":{"path":"run/client.1/train","dur_ns":2000,"thread":"ThreadId(3)"}}
{"Span":{"path":"run/client.0","dur_ns":6000,"thread":"ThreadId(2)"}}
{"Point":{"name":"fl.participation","index":0,"value":1.0}}"#;
        let trace = jsonl_to_trace(jsonl).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.slices, 3);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.tracks, 3, "client 0, client 1, coordinator counter");
    }

    #[test]
    fn summary_ranks_by_total_time() {
        let b = bundle_with(
            r#"{"ts_ns":0,"round":0,"data":{"Begin":{"path":"big"}}},
               {"ts_ns":9000000,"round":0,"data":{"End":{"path":"big","dur_ns":9000000}}},
               {"ts_ns":9000000,"round":0,"data":{"Begin":{"path":"small"}}},
               {"ts_ns":9001000,"round":0,"data":{"End":{"path":"small","dur_ns":1000}}}"#,
        );
        let trace = bundle_to_trace(&b).unwrap();
        let table = summarize(&trace, 10).unwrap();
        let big_at = table.find("big").unwrap();
        let small_at = table.find("small").unwrap();
        assert!(big_at < small_at, "{table}");
    }
}
