//! Chrome `trace_event` JSON export of postmortem bundles and JSONL
//! event streams — loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! The timeline is laid out as one process (`pid` 1) with one track
//! per actor: `tid` 0 is the coordinator, `tid` `c + 1` is client `c`
//! (derived from the deepest `client.<c>` segment of a span path).
//!
//! * Span begin/end ring records become `B`/`E` duration events, so
//!   `run → task → round → client → phase` nest as slices. Ring
//!   truncation is repaired: an `End` whose `Begin` was overwritten
//!   becomes a complete `X` slice (its duration is known), and spans
//!   still open at dump time are closed at the bundle's last
//!   timestamp.
//! * Fault injections and verify violations become instant (`i`)
//!   events on the affected client's track / the coordinator track.
//! * Series points and gauges become counter (`C`) tracks; counter
//!   deltas are accumulated into running-total counter tracks.
//!
//! Timestamps are microseconds (fractional) since the recording
//! epoch. JSONL streams carry only span *ends*, so [`jsonl_to_trace`]
//! lays slices end-to-end per track with synthetic start offsets —
//! durations are exact, offsets are not; bundles are the
//! high-fidelity path.
//!
//! ## Wire lifecycle and multi-process merges
//!
//! `Wire` ring records (the four-point message lifecycle the transport
//! stamps: `enq → out → in → handled`, plus `drop` for frames the
//! fault injector burned) become instant events named
//! `wire.<phase>.<msg>` *and* Chrome flow events (`s`/`t`/`f`, cat
//! `wire.flow`, id = the frame's span id in hex) so Perfetto draws a
//! causal arrow from the sender's transmit to the receiver's handling.
//! A dropped frame starts a flow that never finishes — a terminated
//! arrow.
//!
//! [`merge_bundles`] fuses per-process postmortem bundles into one
//! timeline: each bundle keeps its own `pid` (its OS pid when
//! recorded), and clock offsets between processes are estimated
//! NTP-style from the send timestamps receivers echo into their `in`
//! records — for each process pair the minimum observed one-way delta
//! bounds the skew, and opposing directions split it.

use serde_json::{Number, Value};

/// The `pid` single-bundle traces live under.
const PID: u64 = 1;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn vs(s: &str) -> Value {
    Value::String(s.to_string())
}

fn vu(u: u64) -> Value {
    Value::Number(Number::U(u))
}

fn vf(f: f64) -> Value {
    Value::Number(Number::F(f))
}

/// Track id for a span path: the deepest `client.<c>` segment maps to
/// `c + 1`, everything else to the coordinator track 0.
pub fn tid_for_path(path: &str) -> u64 {
    path.rsplit('/')
        .find_map(|seg| {
            seg.strip_prefix("client.")
                .and_then(|c| c.parse::<u64>().ok())
        })
        .map_or(0, |c| c + 1)
}

fn leaf(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn track_name(tid: u64) -> String {
    if tid == 0 {
        "coordinator".to_string()
    } else {
        format!("client {}", tid - 1)
    }
}

/// One converted process's share of a merged trace: its `pid`, its
/// display name, its events, and the tids they touched.
type ProcessPart = (u64, String, Vec<Value>, Vec<u64>);

/// Wrap per-process event sets in the trace envelope, prepending
/// process/thread-name metadata for every pid and track seen.
fn finish_multi(parts: Vec<ProcessPart>) -> Value {
    let mut all: Vec<Value> = Vec::new();
    let mut bodies: Vec<Value> = Vec::new();
    for (pid, name, mut events, mut tids) in parts {
        tids.sort_unstable();
        tids.dedup();
        all.push(obj(vec![
            ("name", vs("process_name")),
            ("ph", vs("M")),
            ("pid", vu(pid)),
            ("args", obj(vec![("name", vs(&name))])),
        ]));
        for tid in tids {
            all.push(obj(vec![
                ("name", vs("thread_name")),
                ("ph", vs("M")),
                ("pid", vu(pid)),
                ("tid", vu(tid)),
                ("args", obj(vec![("name", vs(&track_name(tid)))])),
            ]));
        }
        bodies.append(&mut events);
    }
    all.append(&mut bodies);
    obj(vec![
        ("traceEvents", Value::Array(all)),
        ("displayTimeUnit", vs("ms")),
    ])
}

struct Emitter {
    /// The `pid` every event of this process carries.
    pid: u64,
    /// Display name for the process track.
    proc_name: String,
    /// Clock alignment: added to every timestamp at emit time, µs.
    offset_us: f64,
    events: Vec<Value>,
    tids: Vec<u64>,
    /// Per-tid stack of open `B` paths (for balance repair).
    stacks: Vec<(u64, Vec<String>)>,
    /// Per-name running totals for `Count` records.
    totals: Vec<(String, u64)>,
    max_ts_us: f64,
}

impl Emitter {
    fn new() -> Self {
        Self::with_process(PID, "fedknow-sim", 0.0)
    }

    fn with_process(pid: u64, proc_name: &str, offset_us: f64) -> Self {
        Self {
            pid,
            proc_name: proc_name.to_string(),
            offset_us,
            events: Vec::new(),
            tids: Vec::new(),
            stacks: Vec::new(),
            totals: Vec::new(),
            max_ts_us: 0.0,
        }
    }

    /// Apply this process's clock-alignment offset. Clamped at zero:
    /// the validator (and Perfetto) reject negative timestamps, and
    /// anything the clamp touches predates the aligned origin anyway.
    fn shift(&self, ts_us: f64) -> f64 {
        (ts_us + self.offset_us).max(0.0)
    }

    fn stack(&mut self, tid: u64) -> &mut Vec<String> {
        if let Some(i) = self.stacks.iter().position(|(t, _)| *t == tid) {
            return &mut self.stacks[i].1;
        }
        self.stacks.push((tid, Vec::new()));
        &mut self.stacks.last_mut().unwrap().1
    }

    fn push(&mut self, tid: u64, ev: Value) {
        self.tids.push(tid);
        self.events.push(ev);
    }

    fn see_ts(&mut self, ts_us: f64) {
        if ts_us > self.max_ts_us {
            self.max_ts_us = ts_us;
        }
    }

    fn begin(&mut self, ts_us: f64, round: u64, path: &str) {
        let ts_us = self.shift(ts_us);
        let tid = tid_for_path(path);
        self.see_ts(ts_us);
        self.stack(tid).push(path.to_string());
        let pid = self.pid;
        self.push(
            tid,
            obj(vec![
                ("name", vs(leaf(path))),
                ("cat", vs("span")),
                ("ph", vs("B")),
                ("ts", vf(ts_us)),
                ("pid", vu(pid)),
                ("tid", vu(tid)),
                ("args", obj(vec![("path", vs(path)), ("round", vu(round))])),
            ]),
        );
    }

    /// Emit an `E` at an already-shifted timestamp.
    fn emit_end(&mut self, tid: u64, ts_us: f64, name: &str) {
        let pid = self.pid;
        self.push(
            tid,
            obj(vec![
                ("name", vs(name)),
                ("ph", vs("E")),
                ("ts", vf(ts_us)),
                ("pid", vu(pid)),
                ("tid", vu(tid)),
            ]),
        );
    }

    fn end(&mut self, ts_us: f64, path: &str, dur_ns: u64) {
        let ts_us = self.shift(ts_us);
        let tid = tid_for_path(path);
        self.see_ts(ts_us);
        let stack = self.stack(tid);
        match stack.iter().rposition(|p| p == path) {
            Some(pos) => {
                // Close any deeper spans whose `End` the ring lost.
                let orphans: Vec<String> = stack.drain(pos..).collect();
                for p in orphans.iter().skip(1).rev() {
                    let n = leaf(p).to_string();
                    self.emit_end(tid, ts_us, &n);
                }
                let n = leaf(path).to_string();
                self.emit_end(tid, ts_us, &n);
            }
            None => {
                // The matching `Begin` was overwritten by the ring
                // bound; the duration is still known, so emit a
                // self-contained complete slice.
                let dur_us = dur_ns as f64 / 1000.0;
                let pid = self.pid;
                self.push(
                    tid,
                    obj(vec![
                        ("name", vs(leaf(path))),
                        ("cat", vs("span")),
                        ("ph", vs("X")),
                        ("ts", vf((ts_us - dur_us).max(0.0))),
                        ("dur", vf(dur_us)),
                        ("pid", vu(pid)),
                        ("tid", vu(tid)),
                        (
                            "args",
                            obj(vec![("path", vs(path)), ("truncated", Value::Bool(true))]),
                        ),
                    ]),
                );
            }
        }
    }

    fn instant(&mut self, ts_us: f64, tid: u64, name: &str, cat: &str, args: Value) {
        let ts_us = self.shift(ts_us);
        self.see_ts(ts_us);
        let pid = self.pid;
        self.push(
            tid,
            obj(vec![
                ("name", vs(name)),
                ("cat", vs(cat)),
                ("ph", vs("i")),
                ("ts", vf(ts_us)),
                ("pid", vu(pid)),
                ("tid", vu(tid)),
                ("s", vs("t")),
                ("args", args),
            ]),
        );
    }

    /// A wire-lifecycle record: an instant on the connection's track,
    /// plus — for the phases that bound a frame's flight — a Chrome
    /// flow event keyed by the frame's span id, so the viewer draws the
    /// causal arrow from sender to receiver. `out` and `drop` start a
    /// flow (`s`); `in` continues it (`t`); `handled` finishes it
    /// (`f`). A `drop` therefore leaves a started, never-finished flow:
    /// the terminated arrow is the dropped frame.
    #[allow(clippy::too_many_arguments)]
    fn wire(
        &mut self,
        ts_us: f64,
        round: u64,
        phase: &str,
        msg: &str,
        conn: u64,
        span: u64,
        parent: u64,
        bytes: u64,
        peer_ts_ns: u64,
    ) {
        let tid = if conn == u64::MAX { 0 } else { conn + 1 };
        self.instant(
            ts_us,
            tid,
            &format!("wire.{phase}.{msg}"),
            "wire",
            obj(vec![
                ("span", vs(&format!("{span:x}"))),
                ("parent", vs(&format!("{parent:x}"))),
                ("bytes", vu(bytes)),
                ("round", vu(round)),
                ("peer_ts_ns", vu(peer_ts_ns)),
            ]),
        );
        let flow_ph = match phase {
            "out" | "drop" => Some("s"),
            "in" => Some("t"),
            "handled" => Some("f"),
            _ => None,
        };
        if let Some(ph) = flow_ph {
            let sts = self.shift(ts_us);
            let pid = self.pid;
            let mut fields = vec![
                ("name", vs(&format!("wire.{msg}"))),
                ("cat", vs("wire.flow")),
                ("ph", vs(ph)),
                ("id", vs(&format!("{span:x}"))),
                ("ts", vf(sts)),
                ("pid", vu(pid)),
                ("tid", vu(tid)),
            ];
            if ph == "f" {
                // Bind to the enclosing slice's *end*, not its start.
                fields.push(("bp", vs("e")));
            }
            self.push(tid, obj(fields));
        }
    }

    fn counter(&mut self, ts_us: f64, name: &str, value: f64) {
        let ts_us = self.shift(ts_us);
        self.see_ts(ts_us);
        let pid = self.pid;
        self.push(
            0,
            obj(vec![
                ("name", vs(name)),
                ("ph", vs("C")),
                ("ts", vf(ts_us)),
                ("pid", vu(pid)),
                ("tid", vu(0)),
                ("args", obj(vec![("value", vf(value))])),
            ]),
        );
    }

    fn count_delta(&mut self, ts_us: f64, name: &str, delta: u64) {
        let total = match self.totals.iter_mut().find(|(n, _)| n == name) {
            Some((_, t)) => {
                *t += delta;
                *t
            }
            None => {
                self.totals.push((name.to_string(), delta));
                delta
            }
        };
        self.counter(ts_us, name, total as f64);
    }

    /// Close spans still open at dump time at the last seen timestamp.
    fn close_open_spans(&mut self) {
        let ts = self.max_ts_us;
        let stacks = std::mem::take(&mut self.stacks);
        for (tid, stack) in stacks {
            for p in stack.iter().rev() {
                let n = leaf(p).to_string();
                self.emit_end(tid, ts, &n);
            }
        }
    }

    /// Close open spans and surrender this process's share of a merged
    /// trace.
    fn into_parts(mut self) -> ProcessPart {
        self.close_open_spans();
        (self.pid, self.proc_name, self.events, self.tids)
    }

    fn into_trace(self) -> Value {
        finish_multi(vec![self.into_parts()])
    }
}

fn ring_record_to_events(em: &mut Emitter, rec: &Value) -> Result<(), String> {
    let ts_ns = rec
        .get("ts_ns")
        .and_then(Value::as_u64)
        .ok_or("ring record without numeric `ts_ns`")?;
    let ts_us = ts_ns as f64 / 1000.0;
    let round = rec.get("round").and_then(Value::as_u64).unwrap_or(0);
    let data = rec.get("data").ok_or("ring record without `data`")?;
    let str_of = |v: &Value, key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("ring record missing string `{key}`"))
    };
    if let Some(b) = data.get("Begin") {
        em.begin(ts_us, round, &str_of(b, "path")?);
    } else if let Some(e) = data.get("End") {
        let dur = e.get("dur_ns").and_then(Value::as_u64).unwrap_or(0);
        em.end(ts_us, &str_of(e, "path")?, dur);
    } else if let Some(f) = data.get("Fault") {
        let client = f.get("client").and_then(Value::as_u64).unwrap_or(0);
        let detail = f.get("detail").and_then(Value::as_u64).unwrap_or(0);
        let kind = str_of(f, "kind")?;
        em.instant(
            ts_us,
            client + 1,
            &format!("fault.{kind}"),
            "fault",
            obj(vec![
                ("client", vu(client)),
                ("detail", vu(detail)),
                ("round", vu(round)),
            ]),
        );
    } else if let Some(v) = data.get("Violation") {
        let check = str_of(v, "check")?;
        let detail = str_of(v, "detail").unwrap_or_default();
        em.instant(
            ts_us,
            0,
            &format!("violation.{check}"),
            "verify",
            obj(vec![("detail", vs(&detail)), ("round", vu(round))]),
        );
    } else if let Some(n) = data.get("Note") {
        let note = str_of(n, "note")?;
        let short: String = note.chars().take(120).collect();
        em.instant(ts_us, 0, &short, "note", obj(vec![("round", vu(round))]));
    } else if let Some(p) = data.get("Point") {
        let value = p.get("value").and_then(Value::as_f64).unwrap_or(0.0);
        em.counter(ts_us, &str_of(p, "name")?, value);
    } else if let Some(g) = data.get("Gauge") {
        let value = g.get("value").and_then(Value::as_f64).unwrap_or(0.0);
        em.counter(ts_us, &str_of(g, "name")?, value);
    } else if let Some(c) = data.get("Count") {
        let delta = c.get("delta").and_then(Value::as_u64).unwrap_or(0);
        em.count_delta(ts_us, &str_of(c, "name")?, delta);
    } else if let Some(w) = data.get("Wire") {
        let num = |key: &str, default: u64| w.get(key).and_then(Value::as_u64).unwrap_or(default);
        em.wire(
            ts_us,
            round,
            &str_of(w, "phase")?,
            &str_of(w, "msg")?,
            num("conn", u64::MAX),
            num("span", 0),
            num("parent", 0),
            num("bytes", 0),
            num("peer_ts_ns", 0),
        );
    }
    // `Sample` records are timing raw material, already summarised in
    // the bundle's histogram dump; they would only blur the timeline.
    Ok(())
}

/// All of a bundle's ring records, merged across its per-thread
/// tracks into one globally time-ordered stream. The sort is stable,
/// so equal timestamps keep each ring's (causal) internal order.
fn bundle_records(bundle: &Value) -> Result<Vec<&Value>, String> {
    let tracks = bundle
        .get("tracks")
        .and_then(Value::as_array)
        .ok_or("not a postmortem bundle: no `tracks` array")?;
    let mut recs: Vec<&Value> = Vec::new();
    for t in tracks {
        if let Some(events) = t.get("events").and_then(Value::as_array) {
            recs.extend(events.iter());
        }
    }
    recs.sort_by_key(|r| r.get("ts_ns").and_then(Value::as_u64).unwrap_or(0));
    Ok(recs)
}

/// Convert a parsed postmortem bundle into a Chrome trace value.
pub fn bundle_to_trace(bundle: &Value) -> Result<Value, String> {
    let mut em = Emitter::new();
    for rec in bundle_records(bundle)? {
        ring_record_to_events(&mut em, rec)?;
    }
    Ok(em.into_trace())
}

/// What a multi-process merge established about the run's wire
/// traffic and clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeStats {
    /// Bundles merged.
    pub bundles: usize,
    /// Frames some process recorded receiving (`in`).
    pub delivered: usize,
    /// Delivered frames whose sender-side record was also found — the
    /// complete causal flow links.
    pub linked: usize,
    /// Frames the fault injector burned (`drop`): terminated flows.
    pub dropped: usize,
    /// `linked / delivered` (1.0 when nothing was delivered).
    pub link_fraction: f64,
    /// Clock shift applied to each bundle, µs, in input order (offset
    /// to bundle 0's clock, then a common shift to a zero origin).
    pub offsets_us: Vec<f64>,
}

/// Merge per-process postmortem bundles into one clock-aligned Chrome
/// trace. Each bundle becomes its own trace process (keeping the OS
/// pid it recorded), and inter-process clock offsets are estimated
/// NTP-style: every receive record echoes the sender's send timestamp,
/// so for a process pair the minimum observed `recv − send` in each
/// direction bounds skew-plus-delay, and opposing directions cancel
/// the delay. Processes exchanging frames in only one direction fall
/// back to `delay ≈ 0`; processes with no direct traffic to an
/// already-aligned one stay unshifted.
pub fn merge_bundles(bundles: &[Value]) -> Result<(Value, MergeStats), String> {
    if bundles.is_empty() {
        return Err("no bundles to merge".to_string());
    }
    let n = bundles.len();
    let mut recs: Vec<Vec<&Value>> = Vec::with_capacity(n);
    for b in bundles {
        recs.push(bundle_records(b)?);
    }

    // Pass 1 — wire lifecycle census: which bundle sent each span,
    // which spans were received/handled/dropped, and the per-pair
    // minimum one-way deltas for clock estimation.
    let mut sender_of: Vec<(u64, usize)> = Vec::new();
    let mut dropped_spans: Vec<u64> = Vec::new();
    let mut in_recs: Vec<(usize, u64, i128)> = Vec::new(); // (bundle, span, recv − send)
    for (bi, rs) in recs.iter().enumerate() {
        for r in rs {
            let Some(w) = r.get("data").and_then(|d| d.get("Wire")) else {
                continue;
            };
            let phase = w.get("phase").and_then(Value::as_str).unwrap_or("");
            let span = w.get("span").and_then(Value::as_u64).unwrap_or(0);
            match phase {
                "enq" | "out" | "drop" => {
                    sender_of.push((span, bi));
                    if phase == "drop" {
                        dropped_spans.push(span);
                    }
                }
                "in" => {
                    let ts = r.get("ts_ns").and_then(Value::as_u64).unwrap_or(0);
                    let peer = w.get("peer_ts_ns").and_then(Value::as_u64).unwrap_or(0);
                    in_recs.push((bi, span, i128::from(ts) - i128::from(peer)));
                }
                _ => {}
            }
        }
    }
    sender_of.sort_unstable();
    sender_of.dedup();
    let sender = |span: u64| -> Option<usize> {
        let i = sender_of.partition_point(|&(s, _)| s < span);
        (i < sender_of.len() && sender_of[i].0 == span).then(|| sender_of[i].1)
    };

    // d[a][b]: minimum observed (recv_b − send_a) over a→b frames —
    // true flight delay plus (clock_b − clock_a).
    let mut d: Vec<Vec<Option<i128>>> = vec![vec![None; n]; n];
    let mut delivered_spans: Vec<(u64, bool)> = Vec::new();
    for &(bi, span, delta) in &in_recs {
        let from = sender(span);
        delivered_spans.push((span, from.is_some()));
        if let Some(a) = from {
            if a != bi {
                let slot = &mut d[a][bi];
                *slot = Some(slot.map_or(delta, |cur| cur.min(delta)));
            }
        }
    }
    delivered_spans.sort_unstable();
    delivered_spans.dedup();
    dropped_spans.sort_unstable();
    dropped_spans.dedup();

    // Pass 2 — align clocks onto bundle 0's, walking the pair graph so
    // chains (client↔server↔client) resolve even without direct
    // client↔client traffic.
    let mut shift_ns: Vec<Option<f64>> = vec![None; n];
    shift_ns[0] = Some(0.0);
    let mut frontier = vec![0usize];
    while let Some(a) = frontier.pop() {
        let base = shift_ns[a].expect("frontier entries are aligned");
        for b in 0..n {
            if shift_ns[b].is_some() {
                continue;
            }
            let skew = match (d[a][b], d[b][a]) {
                (Some(ab), Some(ba)) => Some((ab as f64 - ba as f64) / 2.0),
                (Some(ab), None) => Some(ab as f64),
                (None, Some(ba)) => Some(-(ba as f64)),
                (None, None) => None,
            };
            if let Some(skew) = skew {
                shift_ns[b] = Some(base - skew);
                frontier.push(b);
            }
        }
    }
    let shift_ns: Vec<f64> = shift_ns.into_iter().map(|s| s.unwrap_or(0.0)).collect();

    // Common origin: the earliest aligned timestamp maps to zero.
    let mut origin = f64::INFINITY;
    for (bi, rs) in recs.iter().enumerate() {
        if let Some(r) = rs.first() {
            let ts = r.get("ts_ns").and_then(Value::as_u64).unwrap_or(0) as f64;
            origin = origin.min(ts + shift_ns[bi]);
        }
    }
    if !origin.is_finite() {
        origin = 0.0;
    }

    // Pass 3 — emit each bundle as its own trace process.
    let mut parts: Vec<ProcessPart> = Vec::with_capacity(n);
    let mut offsets_us = Vec::with_capacity(n);
    let mut pids_seen: Vec<u64> = Vec::new();
    for (bi, rs) in recs.iter().enumerate() {
        let mut pid = bundles[bi]
            .get("pid")
            .and_then(Value::as_u64)
            .unwrap_or(1000 + bi as u64);
        if pids_seen.contains(&pid) {
            pid = 1000 + bi as u64;
        }
        pids_seen.push(pid);
        let name = bundles[bi]
            .get("context")
            .and_then(Value::as_array)
            .and_then(|ctx| {
                ctx.iter().find_map(|e| {
                    (e.get("key").and_then(Value::as_str) == Some("proc.name"))
                        .then(|| e.get("value").and_then(Value::as_str))
                        .flatten()
                })
            })
            .map_or_else(|| format!("process {pid}"), str::to_string);
        let off_us = (shift_ns[bi] - origin) / 1000.0;
        offsets_us.push(off_us);
        let mut em = Emitter::with_process(pid, &name, off_us);
        for r in rs {
            ring_record_to_events(&mut em, r)?;
        }
        parts.push(em.into_parts());
    }

    let delivered = delivered_spans.len();
    let linked = delivered_spans.iter().filter(|(_, l)| *l).count();
    let stats = MergeStats {
        bundles: n,
        delivered,
        linked,
        dropped: dropped_spans.len(),
        link_fraction: if delivered == 0 {
            1.0
        } else {
            linked as f64 / delivered as f64
        },
        offsets_us,
    };
    Ok((finish_multi(parts), stats))
}

/// Convert a live JSONL event stream (the `FEDKNOW_OBS` sink format)
/// into a Chrome trace value. JSONL carries span *ends* only, so each
/// track's slices are laid end-to-end: durations are exact, start
/// offsets synthetic.
pub fn jsonl_to_trace(text: &str) -> Result<Value, String> {
    let mut em = Emitter::new();
    // Synthetic per-track clocks, µs.
    let mut clocks: Vec<(u64, f64)> = Vec::new();
    let clock = |clocks: &mut Vec<(u64, f64)>, tid: u64| -> f64 {
        match clocks.iter().find(|(t, _)| *t == tid) {
            Some((_, c)) => *c,
            None => {
                clocks.push((tid, 0.0));
                0.0
            }
        }
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not JSON: {e}", lineno + 1))?;
        if let Some(sp) = ev.get("Span") {
            let path = sp
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: Span without path", lineno + 1))?;
            let dur_us = sp.get("dur_ns").and_then(Value::as_u64).unwrap_or(0) as f64 / 1000.0;
            let tid = tid_for_path(path);
            let ts = clock(&mut clocks, tid);
            em.see_ts(ts + dur_us);
            em.push(
                tid,
                obj(vec![
                    ("name", vs(leaf(path))),
                    ("cat", vs("span")),
                    ("ph", vs("X")),
                    ("ts", vf(ts)),
                    ("dur", vf(dur_us)),
                    ("pid", vu(PID)),
                    ("tid", vu(tid)),
                    ("args", obj(vec![("path", vs(path))])),
                ]),
            );
            if let Some((_, c)) = clocks.iter_mut().find(|(t, _)| *t == tid) {
                *c += dur_us;
            }
        } else if let Some(p) = ev.get("Point") {
            let name = p.get("name").and_then(Value::as_str).unwrap_or("point");
            let value = p.get("value").and_then(Value::as_f64).unwrap_or(0.0);
            let ts = clock(&mut clocks, 0);
            em.counter(ts, name, value);
        } else if let Some(g) = ev.get("Gauge") {
            let name = g.get("name").and_then(Value::as_str).unwrap_or("gauge");
            let value = g.get("value").and_then(Value::as_f64).unwrap_or(0.0);
            let ts = clock(&mut clocks, 0);
            em.counter(ts, name, value);
        }
        // Count/Sample JSONL events are aggregate material; skipped.
    }
    Ok(em.into_trace())
}

/// Validation summary of a trace (see [`validate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total events, metadata included.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks carrying non-metadata events.
    pub tracks: usize,
    /// Duration slices (`B`/`E` pairs plus `X` events).
    pub slices: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Counter (`C`) events.
    pub counters: usize,
    /// Flow starts (`s`) — one per frame put on the wire.
    pub flow_starts: usize,
    /// Flow finishes (`f`) — frames whose handling closed the flow.
    pub flow_ends: usize,
    /// Largest timestamp seen, µs.
    pub max_ts_us: f64,
}

/// Validate a Chrome trace value: envelope shape, known phase codes,
/// required fields, per-track monotonically non-decreasing `B`/`E`
/// timestamps, and balanced, name-matched `B`/`E` nesting. Flow
/// events are checked in two passes — every `t`/`f` must reference an
/// `s` id, wherever in the file that `s` lives — so event order
/// between processes of a merged trace doesn't matter. Returns
/// counting stats on success, the first problem found on failure.
pub fn validate(trace: &Value) -> Result<TraceStats, String> {
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("trace has no `traceEvents` array")?;
    let mut stats = TraceStats {
        events: events.len(),
        tracks: 0,
        slices: 0,
        instants: 0,
        counters: 0,
        flow_starts: 0,
        flow_ends: 0,
        max_ts_us: 0.0,
    };
    // Per-(pid, tid): open-B stack of names and the last B/E timestamp.
    let mut tracks: Vec<((u64, u64), Vec<String>, f64)> = Vec::new();
    // Flow bookkeeping for the second pass.
    let mut flow_starts: Vec<String> = Vec::new();
    let mut flow_refs: Vec<(usize, String)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing `ph`"))?;
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric `ts`"))?;
        if ts < 0.0 || !ts.is_finite() {
            return Err(at(&format!("bad timestamp {ts}")));
        }
        if ts > stats.max_ts_us {
            stats.max_ts_us = ts;
        }
        let pid = ev
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| at("missing `pid`"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| at("missing `tid`"))?;
        let key = (pid, tid);
        let slot = match tracks.iter().position(|(k, _, _)| *k == key) {
            Some(p) => p,
            None => {
                tracks.push((key, Vec::new(), 0.0));
                tracks.len() - 1
            }
        };
        let name = ev.get("name").and_then(Value::as_str);
        match ph {
            "B" | "E" => {
                let (_, stack, last_ts) = &mut tracks[slot];
                if ts < *last_ts {
                    return Err(at(&format!(
                        "track {key:?}: timestamp {ts} goes backwards (last {last_ts})"
                    )));
                }
                *last_ts = ts;
                if ph == "B" {
                    let name = name.ok_or_else(|| at("`B` without name"))?;
                    stack.push(name.to_string());
                    stats.slices += 1;
                } else {
                    let open = stack
                        .pop()
                        .ok_or_else(|| at(&format!("track {key:?}: `E` without open `B`")))?;
                    if let Some(n) = name {
                        if n != open {
                            return Err(at(&format!(
                                "track {key:?}: `E` named `{n}` closes `B` named `{open}`"
                            )));
                        }
                    }
                }
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| at("`X` without numeric `dur`"))?;
                if dur < 0.0 || !dur.is_finite() {
                    return Err(at(&format!("bad duration {dur}")));
                }
                name.ok_or_else(|| at("`X` without name"))?;
                stats.slices += 1;
            }
            "i" => {
                name.ok_or_else(|| at("`i` without name"))?;
                stats.instants += 1;
            }
            "C" => {
                name.ok_or_else(|| at("`C` without name"))?;
                ev.get("args")
                    .filter(|a| matches!(a, Value::Object(_)))
                    .ok_or_else(|| at("`C` without args object"))?;
                stats.counters += 1;
            }
            "s" | "t" | "f" => {
                name.ok_or_else(|| at("flow event without name"))?;
                let id = ev
                    .get("id")
                    .and_then(Value::as_str)
                    .ok_or_else(|| at("flow event without string `id`"))?;
                if ph == "s" {
                    stats.flow_starts += 1;
                    flow_starts.push(id.to_string());
                } else {
                    if ph == "f" {
                        stats.flow_ends += 1;
                    }
                    flow_refs.push((i, id.to_string()));
                }
            }
            other => return Err(at(&format!("unknown phase `{other}`"))),
        }
    }
    for (key, stack, _) in &tracks {
        if let Some(open) = stack.last() {
            return Err(format!("track {key:?}: span `{open}` never closed"));
        }
    }
    flow_starts.sort_unstable();
    flow_starts.dedup();
    for (i, id) in &flow_refs {
        if flow_starts.binary_search(id).is_err() {
            return Err(format!("event {i}: flow step references unknown id `{id}`"));
        }
    }
    stats.tracks = tracks.len();
    Ok(stats)
}

/// Top-`n` slice table: per span name, the occurrence count and total/
/// mean/max duration, ordered by total time, formatted for terminals.
pub fn summarize(trace: &Value, n: usize) -> Result<String, String> {
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("trace has no `traceEvents` array")?;
    // name -> (count, total_us, max_us)
    let mut agg: Vec<(String, u64, f64, f64)> = Vec::new();
    let mut add = |name: &str, dur: f64| match agg.iter_mut().find(|(n, ..)| n == name) {
        Some((_, c, t, m)) => {
            *c += 1;
            *t += dur;
            if dur > *m {
                *m = dur;
            }
        }
        None => agg.push((name.to_string(), 1, dur, dur)),
    };
    // B/E pairing per track mirrors the validator's stack walk.
    type OpenStack = Vec<(String, f64)>;
    let mut stacks: Vec<((u64, u64), OpenStack)> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        let ts = ev.get("ts").and_then(Value::as_f64).unwrap_or(0.0);
        let key = (
            ev.get("pid").and_then(Value::as_u64).unwrap_or(0),
            ev.get("tid").and_then(Value::as_u64).unwrap_or(0),
        );
        match ph {
            "X" => add(name, ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0)),
            "B" => {
                match stacks.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, s)) => s.push((name.to_string(), ts)),
                    None => stacks.push((key, vec![(name.to_string(), ts)])),
                };
            }
            "E" => {
                if let Some((_, s)) = stacks.iter_mut().find(|(k, _)| *k == key) {
                    if let Some((n, t0)) = s.pop() {
                        add(&n, ts - t0);
                    }
                }
            }
            _ => {}
        }
    }
    agg.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
        "slice", "count", "total ms", "mean ms", "max ms"
    ));
    for (name, count, total, max) in agg.iter().take(n) {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12.3} {:>12.3} {:>12.3}\n",
            name,
            count,
            total / 1000.0,
            total / 1000.0 / *count as f64,
            max / 1000.0
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_derive_from_deepest_client_segment() {
        assert_eq!(tid_for_path("run/task.0/round.1"), 0);
        assert_eq!(tid_for_path("run/task.0/round.1/client.3"), 4);
        assert_eq!(tid_for_path("run/client.2/restore"), 3);
        assert_eq!(tid_for_path("run/client.x"), 0);
        assert_eq!(tid_for_path(""), 0);
    }

    fn bundle_with(events: &str) -> Value {
        let json = format!(
            r#"{{"version":1,"reason":"unit","round":0,"context":[],
                "metrics":{{"counters":[],"gauges":[],"hists":[],"series":[]}},
                "tracks":[{{"thread":"ThreadId(1)","dropped":0,"events":[{events}]}}]}}"#
        );
        serde_json::from_str(&json).unwrap()
    }

    #[test]
    fn nested_spans_convert_to_balanced_begin_end() {
        let b = bundle_with(
            r#"{"ts_ns":1000,"round":0,"data":{"Begin":{"path":"run"}}},
               {"ts_ns":2000,"round":0,"data":{"Begin":{"path":"run/client.0"}}},
               {"ts_ns":5000,"round":0,"data":{"End":{"path":"run/client.0","dur_ns":3000}}},
               {"ts_ns":9000,"round":0,"data":{"End":{"path":"run","dur_ns":8000}}}"#,
        );
        let trace = bundle_to_trace(&b).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.slices, 2);
        assert_eq!(stats.tracks, 2, "coordinator + client 0");
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains(r#""ph":"B""#) && text.contains(r#""ph":"E""#));
    }

    #[test]
    fn faults_and_violations_become_instants_and_truncation_is_repaired() {
        let b = bundle_with(
            // `End` without its `Begin` (ring wrapped) + an open span
            // at dump time + a fault and a violation.
            r#"{"ts_ns":4000,"round":1,"data":{"End":{"path":"run/round.0","dur_ns":2500}}},
               {"ts_ns":5000,"round":1,"data":{"Begin":{"path":"run"}}},
               {"ts_ns":6000,"round":1,"data":{"Fault":{"client":2,"kind":"crash","detail":0}}},
               {"ts_ns":7000,"round":1,"data":{"Violation":{"check":"qp.kkt","detail":"residual"}}}"#,
        );
        let trace = bundle_to_trace(&b).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.slices, 2, "one X repair + one auto-closed B");
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains("fault.crash"));
        assert!(text.contains("violation.qp.kkt"));
        assert!(
            text.contains(r#""ph":"X""#),
            "truncated End becomes X: {text}"
        );
    }

    #[test]
    fn counters_accumulate_deltas() {
        let b = bundle_with(
            r#"{"ts_ns":1000,"round":0,"data":{"Count":{"name":"comm.upload_bytes","delta":10}}},
               {"ts_ns":2000,"round":0,"data":{"Count":{"name":"comm.upload_bytes","delta":5}}},
               {"ts_ns":3000,"round":0,"data":{"Point":{"name":"fl.participation","index":0,"value":0.75}}}"#,
        );
        let trace = bundle_to_trace(&b).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.counters, 3);
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains(r#""value":15.0"#), "running total: {text}");
    }

    #[test]
    fn validator_rejects_unbalanced_and_backwards_traces() {
        let lone_e: Value = serde_json::from_str(
            r#"{"traceEvents":[{"name":"x","ph":"E","ts":1.0,"pid":1,"tid":0}]}"#,
        )
        .unwrap();
        assert!(validate(&lone_e).unwrap_err().contains("without open"));
        let backwards: Value = serde_json::from_str(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":5.0,"pid":1,"tid":0},
                {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":0}]}"#,
        )
        .unwrap();
        assert!(validate(&backwards).unwrap_err().contains("backwards"));
        let unclosed: Value = serde_json::from_str(
            r#"{"traceEvents":[{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0}]}"#,
        )
        .unwrap();
        assert!(validate(&unclosed).unwrap_err().contains("never closed"));
    }

    #[test]
    fn jsonl_conversion_lays_slices_per_track() {
        let jsonl = r#"{"Span":{"path":"run/client.0/train","dur_ns":4000,"thread":"ThreadId(2)"}}
{"Span":{"path":"run/client.1/train","dur_ns":2000,"thread":"ThreadId(3)"}}
{"Span":{"path":"run/client.0","dur_ns":6000,"thread":"ThreadId(2)"}}
{"Point":{"name":"fl.participation","index":0,"value":1.0}}"#;
        let trace = jsonl_to_trace(jsonl).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.slices, 3);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.tracks, 3, "client 0, client 1, coordinator counter");
    }

    fn bundle_with_pid(pid: u64, name: &str, events: &str) -> Value {
        let json = format!(
            r#"{{"version":1,"reason":"unit","round":0,"pid":{pid},
                "context":[{{"key":"proc.name","value":"{name}"}}],
                "metrics":{{"counters":[],"gauges":[],"hists":[],"series":[]}},
                "tracks":[{{"thread":"ThreadId(1)","dropped":0,"events":[{events}]}}]}}"#
        );
        serde_json::from_str(&json).unwrap()
    }

    fn wire_rec(ts: u64, phase: &str, span: u64, peer_ts: u64) -> String {
        format!(
            r#"{{"ts_ns":{ts},"round":0,"data":{{"Wire":{{"phase":"{phase}","conn":0,
                "trace":7,"span":{span},"parent":0,"msg":"upload","bytes":64,
                "peer_ts_ns":{peer_ts}}}}}}}"#
        )
    }

    #[test]
    fn wire_records_become_instants_and_flow_events() {
        let b = bundle_with(
            &[
                wire_rec(1000, "enq", 9, 0),
                wire_rec(1100, "out", 9, 0),
                wire_rec(1500, "in", 9, 1100),
                wire_rec(1700, "handled", 9, 1100),
                wire_rec(2000, "drop", 10, 0),
            ]
            .join(",\n"),
        );
        let trace = bundle_to_trace(&b).unwrap();
        let stats = validate(&trace).unwrap();
        assert_eq!(stats.flow_starts, 2, "out + drop each start a flow");
        assert_eq!(stats.flow_ends, 1, "only span 9 was handled");
        assert_eq!(stats.instants, 5, "every lifecycle point is an instant");
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains("wire.out.upload") && text.contains("wire.drop.upload"));
        assert!(text.contains(r#""cat":"wire.flow""#));
    }

    #[test]
    fn validator_rejects_flow_steps_with_unknown_ids() {
        let orphan: Value = serde_json::from_str(
            r#"{"traceEvents":[
                {"name":"w","cat":"wire.flow","ph":"t","id":"dead","ts":1.0,"pid":1,"tid":0}]}"#,
        )
        .unwrap();
        assert!(validate(&orphan).unwrap_err().contains("unknown id"));
    }

    #[test]
    fn merge_aligns_clocks_and_links_cross_process_flows() {
        // The client's clock runs 5000 ns ahead of the server's; each
        // direction's frame flies for 100 ns. The merger should
        // recover the 5000 ns skew exactly (symmetric delays cancel).
        let server = bundle_with_pid(
            11,
            "server",
            &[
                wire_rec(5100, "in", 100, 10000),
                wire_rec(5200, "handled", 100, 10000),
                wire_rec(6000, "out", 200, 0),
            ]
            .join(",\n"),
        );
        let client = bundle_with_pid(
            22,
            "client0",
            &[
                wire_rec(10000, "out", 100, 0),
                wire_rec(11100, "in", 200, 6000),
                wire_rec(11200, "handled", 200, 6000),
            ]
            .join(",\n"),
        );
        let (trace, stats) = merge_bundles(&[server, client]).unwrap();
        assert_eq!(stats.bundles, 2);
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.linked, 2);
        assert_eq!(stats.dropped, 0);
        assert!((stats.link_fraction - 1.0).abs() < 1e-12);
        let rel = stats.offsets_us[1] - stats.offsets_us[0];
        assert!((rel + 5.0).abs() < 1e-9, "client shifts −5 µs, got {rel}");
        let vstats = validate(&trace).unwrap();
        assert_eq!(vstats.flow_starts, 2);
        assert_eq!(vstats.flow_ends, 2);
        let text = serde_json::to_string(&trace).unwrap();
        assert!(text.contains("server") && text.contains("client0"));
        assert!(text.contains(r#""pid":11"#) && text.contains(r#""pid":22"#));
    }

    #[test]
    fn merge_counts_dropped_frames_as_terminated_flows() {
        let server = bundle_with_pid(11, "server", &wire_rec(5000, "in", 1, 900));
        let client = bundle_with_pid(
            22,
            "client0",
            &[
                wire_rec(900, "out", 1, 0),
                wire_rec(1000, "drop", 2, 0),
                wire_rec(1100, "drop", 3, 0),
            ]
            .join(",\n"),
        );
        let (trace, stats) = merge_bundles(&[server, client]).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.linked, 1);
        assert_eq!(stats.dropped, 2);
        // A dropped frame is a started flow that never finishes —
        // still a valid trace.
        let vstats = validate(&trace).unwrap();
        assert_eq!(vstats.flow_starts, 3);
        assert_eq!(vstats.flow_ends, 0);
    }

    #[test]
    fn merge_accepts_bundles_without_wire_records() {
        // Pre-tracing bundles (no Wire records, no pid) still merge:
        // no links to estimate, offsets stay zero.
        let a = bundle_with(
            r#"{"ts_ns":1000,"round":0,"data":{"Begin":{"path":"run"}}},
               {"ts_ns":2000,"round":0,"data":{"End":{"path":"run","dur_ns":1000}}}"#,
        );
        let b = bundle_with(
            r#"{"ts_ns":3000,"round":0,"data":{"Begin":{"path":"run"}}},
               {"ts_ns":4000,"round":0,"data":{"End":{"path":"run","dur_ns":1000}}}"#,
        );
        let (trace, stats) = merge_bundles(&[a, b]).unwrap();
        assert_eq!(stats.delivered, 0);
        assert!(
            (stats.link_fraction - 1.0).abs() < 1e-12,
            "vacuously linked"
        );
        let vstats = validate(&trace).unwrap();
        assert_eq!(vstats.slices, 2);
        assert_eq!(vstats.tracks, 2, "same tid 0 under two distinct pids");
    }

    #[test]
    fn summary_ranks_by_total_time() {
        let b = bundle_with(
            r#"{"ts_ns":0,"round":0,"data":{"Begin":{"path":"big"}}},
               {"ts_ns":9000000,"round":0,"data":{"End":{"path":"big","dur_ns":9000000}}},
               {"ts_ns":9000000,"round":0,"data":{"Begin":{"path":"small"}}},
               {"ts_ns":9001000,"round":0,"data":{"End":{"path":"small","dur_ns":1000}}}"#,
        );
        let trace = bundle_to_trace(&b).unwrap();
        let table = summarize(&trace, 10).unwrap();
        let big_at = table.find("big").unwrap();
        let small_at = table.find("small").unwrap();
        assert!(big_at < small_at, "{table}");
    }
}
