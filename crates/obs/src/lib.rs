//! # fedknow-obs
//!
//! Observability for the FedKNOW simulation stack: hierarchical spans,
//! phase timers, and a thread-safe metrics registry of counters and
//! log-bucketed histograms, with an optional JSONL event sink.
//!
//! ## Cost model
//!
//! The layer is **off by default**. Every public recording function
//! starts with one relaxed atomic load; when disabled it returns
//! immediately — no clock reads, no allocation, no locks. It turns on
//! in two ways:
//!
//! * `FEDKNOW_OBS=<path>` in the environment (checked by
//!   [`init_from_env`], which the simulation calls once per run):
//!   enables the in-memory registry **and** streams every event to
//!   `<path>` as JSONL, one object per line.
//! * [`enable`] from code (used by the report binaries and tests):
//!   enables the in-memory registry; JSONL is still only attached if
//!   the environment variable is set.
//!
//! Once enabled, observability stays enabled for the process.
//!
//! ## Vocabulary
//!
//! * [`span`] — hierarchical timed regions (`run → task → round →
//!   client`); worker threads join the hierarchy via [`current_path`] +
//!   [`inherit_path`].
//! * [`timer`] — RAII phase timers feeding named histograms
//!   (`qp.solve_ns`, `extract.topk_ns`, …).
//! * [`count`] / [`record`] — plain counters (`comm.upload_bytes`,
//!   `qp.fallback`) and histogram samples (`qp.iters`).
//! * [`snapshot`] — copy of the registry; [`MetricsSnapshot::since`]
//!   attributes metrics to a single run by diffing two snapshots.
//! * [`ring`] — the always-on flight recorder: bounded per-thread ring
//!   buffers mirroring every event, drained into postmortem
//!   [`bundle`]s on panic, strict verify violations, injected faults,
//!   or an explicit [`dump_now`]; [`trace`] renders either bundles or
//!   JSONL as Chrome/Perfetto timelines.

pub mod alloc;
pub mod bundle;
pub mod event;
pub mod handle;
pub mod hist;
pub mod http;
pub mod perf;
pub mod prom;
pub mod registry;
pub mod ring;
pub mod sink;
pub mod span;
pub mod trace;

pub use alloc::{AllocStats, TrackingAllocator, ENV_PROF_ALLOC};
pub use bundle::{
    collect_bundle, dump_now, dump_trigger, set_context, ContextEntry, MetricsDump,
    PostmortemBundle, ThreadTrack, ENV_TRACE_DIR,
};
pub use event::{CountEvent, Event, GaugeEvent, PointEvent, SampleEvent, SpanEnd, SpanPerf};
pub use handle::{CounterHandle, HandleTimer, HistHandle};
pub use hist::{HistSnapshot, LogHistogram};
pub use http::MetricsServer;
pub use perf::PerfCounter;
pub use prom::{prometheus_text, write_prometheus};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry, Series};
pub use ring::{RingBuf, RingData, RingRecord, DEFAULT_TRACE_CAP, ENV_TRACE_CAP};
pub use sink::{read_jsonl, Aggregate, JsonlSink, Sink, SpanStat};
pub use span::{current_path, inherit_path, span, timer, PathGuard, SpanGuard, TimerGuard};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable naming the JSONL output path.
pub const ENV_JSONL: &str = "FEDKNOW_OBS";

/// Environment variable naming the `host:port` to serve live Prometheus
/// metrics on (e.g. `FEDKNOW_OBS_ADDR=127.0.0.1:9184`). Port 0 picks an
/// ephemeral port, printed to stderr at startup.
pub const ENV_ADDR: &str = "FEDKNOW_OBS_ADDR";

/// Every binary linking this crate routes heap allocation through the
/// tracking wrapper. Disabled it costs one relaxed load per allocator
/// call; `FEDKNOW_PROF_ALLOC=1` turns the accounting on (see [`alloc`]).
#[global_allocator]
static GLOBAL_ALLOC: TrackingAllocator = TrackingAllocator;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: OnceLock<State> = OnceLock::new();
static SERVER: OnceLock<Option<MetricsServer>> = OnceLock::new();
/// Ambient round index for series points recorded deep in the stack
/// (integrator, restorer) that don't know the round they run in.
static ROUND: AtomicU64 = AtomicU64::new(0);

struct State {
    registry: Registry,
    jsonl: Option<JsonlSink>,
}

fn state() -> &'static State {
    STATE.get_or_init(|| {
        let jsonl = std::env::var(ENV_JSONL).ok().and_then(|path| {
            if let Some(parent) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            JsonlSink::create(&path)
                .map_err(|e| eprintln!("fedknow-obs: cannot open {ENV_JSONL}={path}: {e}"))
                .ok()
        });
        State {
            registry: Registry::new(),
            jsonl,
        }
    })
}

/// Whether observability is on. One relaxed atomic load — this is the
/// entire cost of every instrumentation site when disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable observability if `FEDKNOW_OBS` (JSONL sink),
/// `FEDKNOW_OBS_ADDR` (live `/metrics` endpoint) or
/// `FEDKNOW_TRACE_DIR` (postmortem bundle directory) is set in the
/// environment. When the address variable is set, a background HTTP
/// server is started once per process, serving Prometheus text
/// exposition from registry snapshots. Whenever observability comes
/// up, the flight recorder starts and the crash-flush panic hook is
/// installed (see [`bundle`]). Idempotent; returns whether
/// observability is enabled afterwards.
pub fn init_from_env() -> bool {
    let jsonl = std::env::var_os(ENV_JSONL).is_some();
    let addr = std::env::var(ENV_ADDR).ok();
    let trace_dir = std::env::var_os(ENV_TRACE_DIR).is_some();
    let prof_alloc = std::env::var_os(ENV_PROF_ALLOC).is_some();
    if !is_enabled() && (jsonl || addr.is_some() || trace_dir || prof_alloc) {
        state();
        ENABLED.store(true, Ordering::Release);
    }
    if is_enabled() {
        // Allocation tracking needs the registry mirror, hence piggy-
        // backs on general enablement (it still costs nothing unless
        // FEDKNOW_PROF_ALLOC itself is set).
        alloc::init_from_env();
    }
    if is_enabled() {
        ring::enable_ring();
        bundle::install_panic_hook();
    }
    if let Some(addr) = addr {
        SERVER.get_or_init(|| match MetricsServer::serve(&addr) {
            Ok(s) => {
                eprintln!("fedknow-obs: serving /metrics on http://{}", s.local_addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("fedknow-obs: cannot bind {ENV_ADDR}={addr}: {e}");
                None
            }
        });
    }
    is_enabled()
}

/// The address the live `/metrics` endpoint is bound to, if
/// [`init_from_env`] started one.
pub fn metrics_addr() -> Option<std::net::SocketAddr> {
    SERVER.get()?.as_ref().map(|s| s.local_addr())
}

/// Enable the in-memory registry and the flight recorder from code
/// (the JSONL sink is still attached only when `FEDKNOW_OBS` is set).
/// Idempotent.
pub fn enable() {
    state();
    ring::enable_ring();
    ENABLED.store(true, Ordering::Release);
}

/// Add `delta` to the counter `name`. No-op when disabled.
pub fn count(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.add(name, delta);
    if ring::ring_enabled() {
        ring::record(RingData::Count {
            name: name.to_string(),
            delta,
        });
    }
    if s.jsonl.is_some() {
        dispatch(&Event::Count(CountEvent {
            name: name.to_string(),
            delta,
        }));
    }
}

/// Record `value` into the histogram `name`. No-op when disabled.
pub fn record(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.record(name, value);
    if ring::ring_enabled() {
        ring::record(RingData::Sample {
            name: name.to_string(),
            value,
        });
    }
    if s.jsonl.is_some() {
        dispatch(&Event::Sample(SampleEvent {
            name: name.to_string(),
            value,
        }));
    }
}

/// Set the gauge `name` to `value`. No-op when disabled.
pub fn gauge(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.set_gauge(name, value);
    if ring::ring_enabled() {
        ring::record(RingData::Gauge {
            name: name.to_string(),
            value,
        });
    }
    if s.jsonl.is_some() {
        dispatch(&Event::Gauge(GaugeEvent {
            name: name.to_string(),
            value,
        }));
    }
}

/// Append a point to the series `name` at the current ambient round
/// index (see [`set_round`]). No-op when disabled.
pub fn series(name: &str, value: f64) {
    series_at(name, round_index(), value);
}

/// Append a point to the series `name` at an explicit index. No-op when
/// disabled.
pub fn series_at(name: &str, index: u64, value: f64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.push_series(name, index, value);
    if ring::ring_enabled() {
        ring::record(RingData::Point {
            name: name.to_string(),
            index,
            value,
        });
    }
    if s.jsonl.is_some() {
        dispatch(&Event::Point(PointEvent {
            name: name.to_string(),
            index,
            value,
        }));
    }
}

/// Publish the current global round index (the simulation calls this at
/// every round boundary) so instrumentation deep in the stack can tag
/// series points with the round they belong to.
pub fn set_round(round: u64) {
    ROUND.store(round, Ordering::Relaxed);
}

/// The last-published global round index (0 before any round).
pub fn round_index() -> u64 {
    ROUND.load(Ordering::Relaxed)
}

/// Record a fault injection into the flight recorder (`kind` is the
/// fault-plan label, `detail` mirrors the fl layer's `FaultEvent`
/// detail field). One relaxed load when the recorder is off.
pub fn fault(client: u64, kind: &str, detail: u64) {
    if !ring::ring_enabled() {
        return;
    }
    ring::record(RingData::Fault {
        client,
        kind: kind.to_string(),
        detail,
    });
}

/// Record a runtime invariant violation into the flight recorder.
/// One relaxed load when the recorder is off.
pub fn violation(check: &str, detail: &str) {
    if !ring::ring_enabled() {
        return;
    }
    ring::record(RingData::Violation {
        check: check.to_string(),
        detail: detail.to_string(),
    });
}

/// Record a free-form marker (checkpoint/resume boundaries, panics)
/// into the flight recorder. One relaxed load when the recorder is
/// off.
pub fn mark(note: &str) {
    if !ring::ring_enabled() {
        return;
    }
    ring::record(RingData::Note {
        note: note.to_string(),
    });
}

/// Record into the registry without emitting a sink event (spans emit
/// their own richer event).
pub(crate) fn record_in_registry(name: &str, value: u64) {
    if is_enabled() {
        state().registry.record(name, value);
    }
}

/// Send an event to the JSONL sink, if attached.
pub(crate) fn dispatch(event: &Event) {
    if !is_enabled() {
        return;
    }
    if let Some(j) = &state().jsonl {
        j.emit(event);
    }
}

/// Open a span with a formatted name (`obs_span!("client.{c}")`)
/// without paying for the `format!` when observability is disabled:
/// the arguments are only evaluated behind the enabled check.
#[macro_export]
macro_rules! obs_span {
    ($($arg:tt)*) => {
        if $crate::is_enabled() {
            $crate::span(&format!($($arg)*))
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// A copy of the global registry, or `None` while disabled.
pub fn snapshot() -> Option<MetricsSnapshot> {
    is_enabled().then(|| state().registry.snapshot())
}

/// Flush observability state at the end of a run: emit the growth of
/// the `flops.*`/`bytes.*`/`alloc.*` perf counters as JSONL `Count`
/// events (they are registry-only on the hot path), then flush the
/// JSONL sink (the global sink is never dropped).
pub fn flush() {
    if is_enabled() {
        perf::flush_deltas();
        if let Some(j) = &state().jsonl {
            j.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static LIFECYCLE_COUNTER: CounterHandle = CounterHandle::new("lifecycle.handle_c");
    static LIFECYCLE_HIST: HistHandle = HistHandle::new("lifecycle.handle_h_ns");
    static LIFECYCLE_KERNEL: PerfCounter = PerfCounter::new("lifecycle_kernel");

    /// The global facade is process-wide state, so the whole sequence
    /// lives in one test: disabled behaviour first, then enable and
    /// exercise every entry point.
    #[test]
    fn facade_lifecycle() {
        // Disabled (no FEDKNOW_OBS in the test environment, `enable`
        // not yet called): everything is inert.
        assert!(!is_enabled());
        count("lifecycle.c", 5);
        record("lifecycle.h", 5);
        gauge("lifecycle.g", 9.0);
        series("lifecycle.s", 9.0);
        LIFECYCLE_COUNTER.add(9);
        LIFECYCLE_HIST.record(9);
        LIFECYCLE_KERNEL.op(100, 50);
        assert_eq!(perf::thread_totals(), (0, 0));
        {
            let _t = timer("lifecycle.t_ns");
            let _ht = LIFECYCLE_HIST.timer();
            let _s = span("lifecycle_span");
            assert_eq!(current_path(), "");
        }
        assert!(snapshot().is_none());
        assert!(!init_from_env());

        enable();
        assert!(is_enabled());
        // The disabled-phase calls must have left no trace.
        let s0 = snapshot().unwrap();
        assert!(!s0.counters.contains_key("lifecycle.c"));
        assert!(!s0.hists.contains_key("lifecycle.h"));
        assert!(!s0.gauges.contains_key("lifecycle.g"));
        assert!(!s0.series.contains_key("lifecycle.s"));
        assert!(!s0.counters.contains_key("lifecycle.handle_c"));

        count("lifecycle.c", 5);
        count("lifecycle.c", 2);
        record("lifecycle.h", 40);
        gauge("lifecycle.g", 1.0);
        gauge("lifecycle.g", 2.5);
        set_round(3);
        assert_eq!(round_index(), 3);
        series("lifecycle.s", 0.5); // lands at the ambient round 3
        series_at("lifecycle.s", 7, 0.25);
        LIFECYCLE_COUNTER.add(2);
        LIFECYCLE_COUNTER.add(3);
        LIFECYCLE_HIST.record(7);
        let (f0, b0) = perf::thread_totals();
        LIFECYCLE_KERNEL.op(64, 32);
        LIFECYCLE_KERNEL.op(6, 3);
        let (f1, b1) = perf::thread_totals();
        assert_eq!((f1 - f0, b1 - b0), (70, 35));
        {
            let _ht = LIFECYCLE_HIST.timer();
        }
        {
            let _t = timer("lifecycle.t_ns");
            let outer = span("lifecycle_outer");
            {
                let _inner = span("lifecycle_inner");
                assert_eq!(current_path(), "lifecycle_outer/lifecycle_inner");
            }
            assert_eq!(current_path(), "lifecycle_outer");
            drop(outer);
            assert_eq!(current_path(), "");
        }
        let s = snapshot().unwrap().since(&s0);
        assert_eq!(s.counters["lifecycle.c"], 7);
        assert_eq!(s.hists["lifecycle.h"].count(), 1);
        assert_eq!(s.hists["lifecycle.t_ns"].count(), 1);
        assert_eq!(s.hists["span.lifecycle_outer_ns"].count(), 1);
        assert_eq!(s.hists["span.lifecycle_inner_ns"].count(), 1);
        assert_eq!(s.gauges["lifecycle.g"], 2.5);
        assert_eq!(s.series["lifecycle.s"], vec![(3, 0.5), (7, 0.25)]);
        // Handles feed the same registry slots as the string API.
        assert_eq!(s.counters["lifecycle.handle_c"], 5);
        assert_eq!(s.hists["lifecycle.handle_h_ns"].count(), 2);
        // Perf counters land under the flops./bytes. namespaces, and the
        // disabled-phase op left no trace.
        assert_eq!(s.counters["flops.lifecycle_kernel"], 70);
        assert_eq!(s.counters["bytes.lifecycle_kernel"], 35);
        count("lifecycle.handle_c", 1);
        let s2 = snapshot().unwrap().since(&s0);
        assert_eq!(s2.counters["lifecycle.handle_c"], 6);

        // Worker-thread path inheritance.
        let root = span("lifecycle_root");
        let path = current_path();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _g = inherit_path(&path);
                let _c = span("lifecycle_worker");
                assert_eq!(current_path(), "lifecycle_root/lifecycle_worker");
            });
        });
        assert_eq!(current_path(), "lifecycle_root");
        drop(root);
        flush(); // no JSONL sink attached; must be a no-op
    }
}
