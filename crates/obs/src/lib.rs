//! # fedknow-obs
//!
//! Observability for the FedKNOW simulation stack: hierarchical spans,
//! phase timers, and a thread-safe metrics registry of counters and
//! log-bucketed histograms, with an optional JSONL event sink.
//!
//! ## Cost model
//!
//! The layer is **off by default**. Every public recording function
//! starts with one relaxed atomic load; when disabled it returns
//! immediately — no clock reads, no allocation, no locks. It turns on
//! in two ways:
//!
//! * `FEDKNOW_OBS=<path>` in the environment (checked by
//!   [`init_from_env`], which the simulation calls once per run):
//!   enables the in-memory registry **and** streams every event to
//!   `<path>` as JSONL, one object per line.
//! * [`enable`] from code (used by the report binaries and tests):
//!   enables the in-memory registry; JSONL is still only attached if
//!   the environment variable is set.
//!
//! Once enabled, observability stays enabled for the process.
//!
//! ## Vocabulary
//!
//! * [`span`] — hierarchical timed regions (`run → task → round →
//!   client`); worker threads join the hierarchy via [`current_path`] +
//!   [`inherit_path`].
//! * [`timer`] — RAII phase timers feeding named histograms
//!   (`qp.solve_ns`, `extract.topk_ns`, …).
//! * [`count`] / [`record`] — plain counters (`comm.upload_bytes`,
//!   `qp.fallback`) and histogram samples (`qp.iters`).
//! * [`snapshot`] — copy of the registry; [`MetricsSnapshot::since`]
//!   attributes metrics to a single run by diffing two snapshots.
//! * [`ring`] — the always-on flight recorder: bounded per-thread ring
//!   buffers mirroring every event, drained into postmortem
//!   [`bundle`]s on panic, strict verify violations, injected faults,
//!   or an explicit [`dump_now`]; [`trace`] renders either bundles or
//!   JSONL as Chrome/Perfetto timelines.

pub mod alloc;
pub mod bundle;
pub mod cohort;
pub mod event;
pub mod handle;
pub mod health;
pub mod hist;
pub mod http;
pub mod perf;
pub mod prom;
pub mod registry;
pub mod ring;
pub mod sink;
pub mod sketch;
pub mod span;
pub mod trace;

pub use alloc::{AllocStats, TrackingAllocator, ENV_PROF_ALLOC};
pub use bundle::{
    collect_bundle, dump_now, dump_trigger, set_context, CohortDump, ContextEntry, MetricsDump,
    PostmortemBundle, SketchDump, ThreadTrack, ENV_TRACE_DIR,
};
pub use cohort::{
    cohort_count, cohort_of, CohortSet, CohortSnapshot, CohortStat, DEFAULT_COHORTS, ENV_COHORTS,
};
pub use event::{CountEvent, Event, GaugeEvent, PointEvent, SampleEvent, SpanEnd, SpanPerf};
pub use handle::{CounterHandle, HandleTimer, HistHandle};
pub use health::{HealthEngine, HealthSnapshot, RoundObservation, SloState, SloStatus};
pub use hist::{HistSnapshot, LogHistogram};
pub use http::MetricsServer;
pub use perf::PerfCounter;
pub use prom::{prometheus_text, write_prometheus};
pub use registry::{
    Counter, Gauge, MetricsSnapshot, Registry, Series, DEFAULT_MAX_NAMES, ENV_MAX_NAMES,
    SERIES_POINT_CAP,
};
pub use ring::{now_ns, RingBuf, RingData, RingRecord, DEFAULT_TRACE_CAP, ENV_TRACE_CAP};
pub use sink::{read_jsonl, Aggregate, JsonlSink, Sink, SpanStat, ENV_MAX_MB};
pub use sketch::{QuantileSketch, Sketch, SketchSnapshot, DEFAULT_ALPHA};
pub use span::{current_path, inherit_path, span, timer, PathGuard, SpanGuard, TimerGuard};

use parking_lot::Mutex;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable naming the JSONL output path.
pub const ENV_JSONL: &str = "FEDKNOW_OBS";

/// Environment variable naming the `host:port` to serve live Prometheus
/// metrics on (e.g. `FEDKNOW_OBS_ADDR=127.0.0.1:9184`). Port 0 picks an
/// ephemeral port, printed to stderr at startup.
pub const ENV_ADDR: &str = "FEDKNOW_OBS_ADDR";

/// Environment variable setting the client-span head-sampling rate
/// (`FEDKNOW_OBS_SPAN_SAMPLE=N` records 1-in-N client spans; anomalous
/// clients are always recorded — see [`mark_anomalous`]).
pub const ENV_SPAN_SAMPLE: &str = "FEDKNOW_OBS_SPAN_SAMPLE";

/// Every binary linking this crate routes heap allocation through the
/// tracking wrapper. Disabled it costs one relaxed load per allocator
/// call; `FEDKNOW_PROF_ALLOC=1` turns the accounting on (see [`alloc`]).
#[global_allocator]
static GLOBAL_ALLOC: TrackingAllocator = TrackingAllocator;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: OnceLock<State> = OnceLock::new();
static SERVER: OnceLock<Option<MetricsServer>> = OnceLock::new();
/// Ambient round index for series points recorded deep in the stack
/// (integrator, restorer) that don't know the round they run in.
static ROUND: AtomicU64 = AtomicU64::new(0);
/// Client-span head-sampling rate: record 1-in-N client spans
/// (1 = record everything, the default).
static SPAN_SAMPLE: AtomicU64 = AtomicU64::new(1);
/// The streaming health engine (armed lazily on first observation).
static HEALTH: OnceLock<Mutex<health::HealthEngine>> = OnceLock::new();
/// Bounded open-addressed set of anomalous client ids (stored as
/// `client + 1`; 0 = empty). Full table = new anomalies are dropped,
/// never grown.
static ANOMALIES: OnceLock<Vec<AtomicU64>> = OnceLock::new();
const ANOMALY_SLOTS: usize = 1024;
const ANOMALY_PROBES: usize = 16;

struct State {
    registry: Registry,
    jsonl: Option<JsonlSink>,
}

fn state() -> &'static State {
    STATE.get_or_init(|| {
        let jsonl = std::env::var(ENV_JSONL).ok().and_then(|path| {
            if let Some(parent) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            JsonlSink::create(&path)
                .map_err(|e| eprintln!("fedknow-obs: cannot open {ENV_JSONL}={path}: {e}"))
                .ok()
        });
        State {
            registry: Registry::new(),
            jsonl,
        }
    })
}

/// Whether observability is on. One relaxed atomic load — this is the
/// entire cost of every instrumentation site when disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable observability if `FEDKNOW_OBS` (JSONL sink),
/// `FEDKNOW_OBS_ADDR` (live `/metrics` endpoint) or
/// `FEDKNOW_TRACE_DIR` (postmortem bundle directory) is set in the
/// environment. When the address variable is set, a background HTTP
/// server is started once per process, serving Prometheus text
/// exposition from registry snapshots. Whenever observability comes
/// up, the flight recorder starts and the crash-flush panic hook is
/// installed (see [`bundle`]). Idempotent; returns whether
/// observability is enabled afterwards.
pub fn init_from_env() -> bool {
    let jsonl = std::env::var_os(ENV_JSONL).is_some();
    let addr = std::env::var(ENV_ADDR).ok();
    let trace_dir = std::env::var_os(ENV_TRACE_DIR).is_some();
    let prof_alloc = std::env::var_os(ENV_PROF_ALLOC).is_some();
    if !is_enabled() && (jsonl || addr.is_some() || trace_dir || prof_alloc) {
        state();
        ENABLED.store(true, Ordering::Release);
    }
    if let Some(n) = std::env::var(ENV_SPAN_SAMPLE)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        set_span_sample(n);
    }
    if is_enabled() {
        // Allocation tracking needs the registry mirror, hence piggy-
        // backs on general enablement (it still costs nothing unless
        // FEDKNOW_PROF_ALLOC itself is set).
        alloc::init_from_env();
    }
    if is_enabled() {
        ring::enable_ring();
        bundle::install_panic_hook();
    }
    if let Some(addr) = addr {
        SERVER.get_or_init(|| match MetricsServer::serve(&addr) {
            Ok(s) => {
                eprintln!("fedknow-obs: serving /metrics on http://{}", s.local_addr());
                Some(s)
            }
            Err(e) => {
                eprintln!("fedknow-obs: cannot bind {ENV_ADDR}={addr}: {e}");
                None
            }
        });
    }
    is_enabled()
}

/// The address the live `/metrics` endpoint is bound to, if
/// [`init_from_env`] started one.
pub fn metrics_addr() -> Option<std::net::SocketAddr> {
    SERVER.get()?.as_ref().map(|s| s.local_addr())
}

/// Enable the in-memory registry and the flight recorder from code
/// (the JSONL sink is still attached only when `FEDKNOW_OBS` is set).
/// Idempotent.
pub fn enable() {
    state();
    ring::enable_ring();
    ENABLED.store(true, Ordering::Release);
}

/// Add `delta` to the counter `name`. No-op when disabled.
pub fn count(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.add(name, delta);
    if ring::ring_enabled() {
        ring::record(RingData::Count {
            name: name.to_string(),
            delta,
        });
    }
    if s.jsonl.is_some() {
        dispatch(&Event::Count(CountEvent {
            name: name.to_string(),
            delta,
        }));
    }
}

/// Record `value` into the histogram `name`. No-op when disabled.
pub fn record(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.record(name, value);
    if ring::ring_enabled() {
        ring::record(RingData::Sample {
            name: name.to_string(),
            value,
        });
    }
    if s.jsonl.is_some() {
        dispatch(&Event::Sample(SampleEvent {
            name: name.to_string(),
            value,
        }));
    }
}

/// Set the gauge `name` to `value`. No-op when disabled.
pub fn gauge(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.set_gauge(name, value);
    if ring::ring_enabled() {
        ring::record(RingData::Gauge {
            name: name.to_string(),
            value,
        });
    }
    if s.jsonl.is_some() {
        dispatch(&Event::Gauge(GaugeEvent {
            name: name.to_string(),
            value,
        }));
    }
}

/// Append a point to the series `name` at the current ambient round
/// index (see [`set_round`]). No-op when disabled.
pub fn series(name: &str, value: f64) {
    series_at(name, round_index(), value);
}

/// Append a point to the series `name` at an explicit index. No-op when
/// disabled.
pub fn series_at(name: &str, index: u64, value: f64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.push_series(name, index, value);
    if ring::ring_enabled() {
        ring::record(RingData::Point {
            name: name.to_string(),
            index,
            value,
        });
    }
    if s.jsonl.is_some() {
        dispatch(&Event::Point(PointEvent {
            name: name.to_string(),
            index,
            value,
        }));
    }
}

/// Record `value` into the quantile sketch `name`. Registry-only by
/// design: per-value events would make telemetry bytes O(values), so
/// sketch contents surface through snapshots, `/metrics`, and the
/// per-round `sketch.<name>.p50`/`.p99` series emitted by
/// [`observe_round`]. No-op when disabled.
pub fn sketch_record(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    state().registry.record_sketch(name, value);
}

/// Record a client-keyed `value`: folds into the client's cohort
/// (bounded `FEDKNOW_OBS_COHORTS` slots with reservoir exemplars) and
/// into the same-named quantile sketch. This is the bounded-memory
/// replacement for per-client metric names. No-op when disabled.
pub fn client_value(name: &str, client: u64, value: f64) {
    if !is_enabled() {
        return;
    }
    state().registry.record_client(name, client, value);
}

/// Set the client-span head-sampling rate: 1-in-`n` client spans are
/// recorded (anomalous clients always are). `n = 1` records everything.
pub fn set_span_sample(n: u64) {
    SPAN_SAMPLE.store(n.max(1), Ordering::Relaxed);
}

/// The current client-span head-sampling rate.
pub fn span_sample_rate() -> u64 {
    SPAN_SAMPLE.load(Ordering::Relaxed).max(1)
}

fn anomaly_table() -> &'static [AtomicU64] {
    ANOMALIES.get_or_init(|| (0..ANOMALY_SLOTS).map(|_| AtomicU64::new(0)).collect())
}

/// Mark a client anomalous (faulted, quarantined, slowest-decile):
/// its spans bypass head sampling from now on. The set is bounded —
/// once [`ANOMALY_SLOTS`] distinct clients are marked, further marks
/// are dropped rather than grown.
pub fn mark_anomalous(client: u64) {
    if !is_enabled() {
        return;
    }
    let table = anomaly_table();
    let key = client.wrapping_add(1);
    let start = (splitmix64(client) % ANOMALY_SLOTS as u64) as usize;
    for p in 0..ANOMALY_PROBES {
        let slot = &table[(start + p) % ANOMALY_SLOTS];
        let cur = slot.load(Ordering::Relaxed);
        if cur == key {
            return;
        }
        if cur == 0
            && slot
                .compare_exchange(0, key, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            return;
        }
    }
}

/// Whether a client has been marked anomalous.
pub fn client_is_anomalous(client: u64) -> bool {
    let Some(table) = ANOMALIES.get() else {
        return false;
    };
    let key = client.wrapping_add(1);
    let start = (splitmix64(client) % ANOMALY_SLOTS as u64) as usize;
    for p in 0..ANOMALY_PROBES {
        match table[(start + p) % ANOMALY_SLOTS].load(Ordering::Relaxed) {
            0 => return false,
            k if k == key => return true,
            _ => {}
        }
    }
    false
}

/// Whether this client's span would be recorded under the current
/// sampling rate (head sample, or anomaly override).
pub fn client_span_sampled(client: u64) -> bool {
    let n = span_sample_rate();
    n <= 1 || client.is_multiple_of(n) || client_is_anomalous(client)
}

/// Open a span for one client's work, with bounded cardinality and
/// head sampling: the span is named `client.<cohort>` (not
/// `client.<id>`, which would create one histogram per client), and at
/// high client counts only 1-in-[`span_sample_rate`] clients are
/// recorded — except anomalous ones, which always are. Returns an
/// inert guard when disabled or sampled out.
pub fn client_span(client: u64) -> SpanGuard {
    if !is_enabled() || !client_span_sampled(client) {
        return SpanGuard::inert();
    }
    span(&format!("client.{}", cohort::cohort_of(client)))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn health_engine() -> &'static Mutex<health::HealthEngine> {
    HEALTH.get_or_init(|| Mutex::new(health::HealthEngine::new()))
}

/// Publish a health snapshot into `health.*` gauges so `/metrics`,
/// JSONL sinks and bundles all see SLO state without extra plumbing.
fn publish_health(h: &health::HealthSnapshot) {
    gauge("health.rounds", h.rounds as f64);
    gauge("health.round_p50_seconds", h.round_p50_seconds);
    gauge("health.round_p99_seconds", h.round_p99_seconds);
    gauge("health.worst", h.worst().as_gauge());
    for slo in &h.slos {
        gauge(&format!("health.{}", slo.name), slo.value);
        gauge(&format!("health.slo.{}", slo.name), slo.state.as_gauge());
    }
}

/// Fold one round of telemetry: every sketch's current round merges
/// into its cumulative sketch (emitting per-round `sketch.<name>.p50`
/// / `.p99` series points for dashboards), and the streaming health
/// engine updates its SLO states (mirrored into `health.*` gauges).
/// The simulation calls this once per round. No-op when disabled.
pub fn observe_round(o: &health::RoundObservation) {
    if !is_enabled() {
        return;
    }
    for (name, snap) in state().registry.fold_sketches() {
        series_at(&format!("sketch.{name}.p50"), o.round, snap.quantile(0.5));
        series_at(&format!("sketch.{name}.p99"), o.round, snap.quantile(0.99));
    }
    let snap = {
        let mut eng = health_engine().lock();
        eng.observe_round(o);
        eng.snapshot()
    };
    publish_health(&snap);
}

/// Feed a task boundary's average forgetting to the health engine's
/// drift SLO. No-op when disabled.
pub fn observe_forgetting(avg_forgetting: f64) {
    if !is_enabled() {
        return;
    }
    let snap = {
        let mut eng = health_engine().lock();
        eng.observe_forgetting(avg_forgetting);
        eng.snapshot()
    };
    publish_health(&snap);
}

/// The health engine's current SLO evaluation, or `None` while
/// disabled.
pub fn health_snapshot() -> Option<health::HealthSnapshot> {
    is_enabled().then(|| health_engine().lock().snapshot())
}

/// Publish the current global round index (the simulation calls this at
/// every round boundary) so instrumentation deep in the stack can tag
/// series points with the round they belong to.
pub fn set_round(round: u64) {
    ROUND.store(round, Ordering::Relaxed);
}

/// The last-published global round index (0 before any round).
pub fn round_index() -> u64 {
    ROUND.load(Ordering::Relaxed)
}

/// Record a fault injection into the flight recorder (`kind` is the
/// fault-plan label, `detail` mirrors the fl layer's `FaultEvent`
/// detail field). One relaxed load when the recorder is off.
pub fn fault(client: u64, kind: &str, detail: u64) {
    // Faulted clients are anomalous by definition: their spans bypass
    // head sampling so postmortems always have the interesting traces.
    mark_anomalous(client);
    if !ring::ring_enabled() {
        return;
    }
    ring::record(RingData::Fault {
        client,
        kind: kind.to_string(),
        detail,
    });
}

/// Record one point of the wire message lifecycle into the flight
/// recorder: `phase` is `enq`/`out`/`in`/`handled`/`drop`, `conn` the
/// connection (client id), `trace`/`span`/`parent` the frame's trace
/// context, `msg` the message-kind label, `bytes` the payload size and
/// `peer_ts_ns` the sender's send timestamp on receive-side records
/// (0 elsewhere). One relaxed load when the recorder is off.
#[allow(clippy::too_many_arguments)]
pub fn wire_event(
    phase: &str,
    conn: u64,
    trace: u64,
    span: u64,
    parent: u64,
    msg: &str,
    bytes: u64,
    peer_ts_ns: u64,
) {
    if !ring::ring_enabled() {
        return;
    }
    ring::record(RingData::Wire {
        phase: phase.to_string(),
        conn,
        trace,
        span,
        parent,
        msg: msg.to_string(),
        bytes,
        peer_ts_ns,
    });
}

/// Feed one message round-trip time (seconds) to the health engine's
/// transport RTT SLO. The SLO gauges refresh at the next round fold
/// ([`observe_round`]), so this stays cheap per message. No-op when
/// disabled.
pub fn observe_message_rtt(rtt_seconds: f64) {
    if !is_enabled() {
        return;
    }
    health_engine().lock().observe_message_rtt(rtt_seconds);
}

/// Feed the server inbox depth observed while handling a message to
/// the health engine's queue-depth SLO (it tracks the maximum). No-op
/// when disabled.
pub fn observe_queue_depth(depth: f64) {
    if !is_enabled() {
        return;
    }
    health_engine().lock().observe_queue_depth(depth);
}

/// Record a runtime invariant violation into the flight recorder.
/// One relaxed load when the recorder is off.
pub fn violation(check: &str, detail: &str) {
    if !ring::ring_enabled() {
        return;
    }
    ring::record(RingData::Violation {
        check: check.to_string(),
        detail: detail.to_string(),
    });
}

/// Record a free-form marker (checkpoint/resume boundaries, panics)
/// into the flight recorder. One relaxed load when the recorder is
/// off.
pub fn mark(note: &str) {
    if !ring::ring_enabled() {
        return;
    }
    ring::record(RingData::Note {
        note: note.to_string(),
    });
}

/// Record into the registry without emitting a sink event (spans emit
/// their own richer event).
pub(crate) fn record_in_registry(name: &str, value: u64) {
    if is_enabled() {
        state().registry.record(name, value);
    }
}

/// Count into the registry without emitting a sink event. The sink's
/// own rotation accounting uses this: routing those counts through
/// [`count`] would re-enter the sink it is rotating.
pub(crate) fn count_in_registry(name: &str, delta: u64) {
    if is_enabled() {
        state().registry.add(name, delta);
    }
}

/// Send an event to the JSONL sink, if attached.
pub(crate) fn dispatch(event: &Event) {
    if !is_enabled() {
        return;
    }
    if let Some(j) = &state().jsonl {
        j.emit(event);
    }
}

/// Open a span with a formatted name (`obs_span!("client.{c}")`)
/// without paying for the `format!` when observability is disabled:
/// the arguments are only evaluated behind the enabled check.
#[macro_export]
macro_rules! obs_span {
    ($($arg:tt)*) => {
        if $crate::is_enabled() {
            $crate::span(&format!($($arg)*))
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// A copy of the global registry, or `None` while disabled.
pub fn snapshot() -> Option<MetricsSnapshot> {
    is_enabled().then(|| state().registry.snapshot())
}

/// Flush observability state at the end of a run: emit the growth of
/// the `flops.*`/`bytes.*`/`alloc.*` perf counters as JSONL `Count`
/// events (they are registry-only on the hot path), then flush the
/// JSONL sink (the global sink is never dropped).
pub fn flush() {
    if is_enabled() {
        perf::flush_deltas();
        if let Some(j) = &state().jsonl {
            j.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static LIFECYCLE_COUNTER: CounterHandle = CounterHandle::new("lifecycle.handle_c");
    static LIFECYCLE_HIST: HistHandle = HistHandle::new("lifecycle.handle_h_ns");
    static LIFECYCLE_KERNEL: PerfCounter = PerfCounter::new("lifecycle_kernel");

    /// The global facade is process-wide state, so the whole sequence
    /// lives in one test: disabled behaviour first, then enable and
    /// exercise every entry point.
    #[test]
    fn facade_lifecycle() {
        // Disabled (no FEDKNOW_OBS in the test environment, `enable`
        // not yet called): everything is inert.
        assert!(!is_enabled());
        count("lifecycle.c", 5);
        record("lifecycle.h", 5);
        gauge("lifecycle.g", 9.0);
        series("lifecycle.s", 9.0);
        LIFECYCLE_COUNTER.add(9);
        LIFECYCLE_HIST.record(9);
        LIFECYCLE_KERNEL.op(100, 50);
        sketch_record("lifecycle.sk", 9.0);
        client_value("lifecycle.cv", 1, 9.0);
        mark_anomalous(1);
        assert!(!client_is_anomalous(1));
        observe_round(&RoundObservation::default());
        observe_forgetting(0.5);
        assert!(health_snapshot().is_none());
        assert_eq!(perf::thread_totals(), (0, 0));
        {
            let _t = timer("lifecycle.t_ns");
            let _ht = LIFECYCLE_HIST.timer();
            let _s = span("lifecycle_span");
            assert_eq!(current_path(), "");
        }
        assert!(snapshot().is_none());
        assert!(!init_from_env());

        enable();
        assert!(is_enabled());
        // The disabled-phase calls must have left no trace.
        let s0 = snapshot().unwrap();
        assert!(!s0.counters.contains_key("lifecycle.c"));
        assert!(!s0.hists.contains_key("lifecycle.h"));
        assert!(!s0.gauges.contains_key("lifecycle.g"));
        assert!(!s0.series.contains_key("lifecycle.s"));
        assert!(!s0.counters.contains_key("lifecycle.handle_c"));

        count("lifecycle.c", 5);
        count("lifecycle.c", 2);
        record("lifecycle.h", 40);
        gauge("lifecycle.g", 1.0);
        gauge("lifecycle.g", 2.5);
        set_round(3);
        assert_eq!(round_index(), 3);
        series("lifecycle.s", 0.5); // lands at the ambient round 3
        series_at("lifecycle.s", 7, 0.25);
        LIFECYCLE_COUNTER.add(2);
        LIFECYCLE_COUNTER.add(3);
        LIFECYCLE_HIST.record(7);
        let (f0, b0) = perf::thread_totals();
        LIFECYCLE_KERNEL.op(64, 32);
        LIFECYCLE_KERNEL.op(6, 3);
        let (f1, b1) = perf::thread_totals();
        assert_eq!((f1 - f0, b1 - b0), (70, 35));
        {
            let _ht = LIFECYCLE_HIST.timer();
        }
        {
            let _t = timer("lifecycle.t_ns");
            let outer = span("lifecycle_outer");
            {
                let _inner = span("lifecycle_inner");
                assert_eq!(current_path(), "lifecycle_outer/lifecycle_inner");
            }
            assert_eq!(current_path(), "lifecycle_outer");
            drop(outer);
            assert_eq!(current_path(), "");
        }
        let s = snapshot().unwrap().since(&s0);
        assert_eq!(s.counters["lifecycle.c"], 7);
        assert_eq!(s.hists["lifecycle.h"].count(), 1);
        assert_eq!(s.hists["lifecycle.t_ns"].count(), 1);
        assert_eq!(s.hists["span.lifecycle_outer_ns"].count(), 1);
        assert_eq!(s.hists["span.lifecycle_inner_ns"].count(), 1);
        assert_eq!(s.gauges["lifecycle.g"], 2.5);
        assert_eq!(s.series["lifecycle.s"], vec![(3, 0.5), (7, 0.25)]);
        // Handles feed the same registry slots as the string API.
        assert_eq!(s.counters["lifecycle.handle_c"], 5);
        assert_eq!(s.hists["lifecycle.handle_h_ns"].count(), 2);
        // Perf counters land under the flops./bytes. namespaces, and the
        // disabled-phase op left no trace.
        assert_eq!(s.counters["flops.lifecycle_kernel"], 70);
        assert_eq!(s.counters["bytes.lifecycle_kernel"], 35);
        count("lifecycle.handle_c", 1);
        let s2 = snapshot().unwrap().since(&s0);
        assert_eq!(s2.counters["lifecycle.handle_c"], 6);

        // Sketches, cohorts, and the health engine — and the
        // disabled-phase calls above left no trace in any of them.
        assert!(!s0.sketches.contains_key("lifecycle.sk"));
        assert!(!s0.cohorts.contains_key("lifecycle.cv"));
        sketch_record("lifecycle.sk", 10.0);
        sketch_record("lifecycle.sk", 20.0);
        client_value("lifecycle.cv", 1, 3.0);
        client_value("lifecycle.cv", 2, 5.0);
        observe_round(&RoundObservation {
            round: 3,
            expected: 2,
            completed: 2,
            round_seconds: 1.0,
            ..Default::default()
        });
        observe_forgetting(0.01);
        let s3 = snapshot().unwrap().since(&s0);
        assert_eq!(s3.sketches["lifecycle.sk"].count, 2);
        assert_eq!(s3.sketches["lifecycle.cv"].count, 2);
        assert_eq!(s3.cohorts["lifecycle.cv"].total_count(), 2);
        // observe_round folded the sketches into per-round series…
        assert!(s3.series.contains_key("sketch.lifecycle.sk.p50"));
        assert!(s3.series.contains_key("sketch.lifecycle.sk.p99"));
        // …and published the health gauges.
        assert_eq!(s3.gauges["health.rounds"], 1.0);
        assert!(s3.gauges.contains_key("health.slo.straggler_rate"));
        let h = health_snapshot().unwrap();
        assert_eq!(h.rounds, 1);
        assert_eq!(h.worst(), SloState::Ok);

        // Anomaly marking and span sampling.
        assert_eq!(span_sample_rate(), 1);
        set_span_sample(10);
        assert!(client_span_sampled(0), "head sample keeps 1-in-10");
        assert!(!client_span_sampled(7));
        mark_anomalous(7);
        assert!(client_is_anomalous(7));
        assert!(client_span_sampled(7), "anomalies bypass sampling");
        {
            let _g = client_span(20); // cohort 20, sampled in
            assert_eq!(current_path(), "client.20");
        }
        {
            let _g = client_span(13); // sampled out: inert, no path pushed
            assert_eq!(current_path(), "");
        }
        set_span_sample(1);

        // Worker-thread path inheritance.
        let root = span("lifecycle_root");
        let path = current_path();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _g = inherit_path(&path);
                let _c = span("lifecycle_worker");
                assert_eq!(current_path(), "lifecycle_root/lifecycle_worker");
            });
        });
        assert_eq!(current_path(), "lifecycle_root");
        drop(root);
        flush(); // no JSONL sink attached; must be a no-op
    }
}
