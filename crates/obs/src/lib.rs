//! # fedknow-obs
//!
//! Observability for the FedKNOW simulation stack: hierarchical spans,
//! phase timers, and a thread-safe metrics registry of counters and
//! log-bucketed histograms, with an optional JSONL event sink.
//!
//! ## Cost model
//!
//! The layer is **off by default**. Every public recording function
//! starts with one relaxed atomic load; when disabled it returns
//! immediately — no clock reads, no allocation, no locks. It turns on
//! in two ways:
//!
//! * `FEDKNOW_OBS=<path>` in the environment (checked by
//!   [`init_from_env`], which the simulation calls once per run):
//!   enables the in-memory registry **and** streams every event to
//!   `<path>` as JSONL, one object per line.
//! * [`enable`] from code (used by the report binaries and tests):
//!   enables the in-memory registry; JSONL is still only attached if
//!   the environment variable is set.
//!
//! Once enabled, observability stays enabled for the process.
//!
//! ## Vocabulary
//!
//! * [`span`] — hierarchical timed regions (`run → task → round →
//!   client`); worker threads join the hierarchy via [`current_path`] +
//!   [`inherit_path`].
//! * [`timer`] — RAII phase timers feeding named histograms
//!   (`qp.solve_ns`, `extract.topk_ns`, …).
//! * [`count`] / [`record`] — plain counters (`comm.upload_bytes`,
//!   `qp.fallback`) and histogram samples (`qp.iters`).
//! * [`snapshot`] — copy of the registry; [`MetricsSnapshot::since`]
//!   attributes metrics to a single run by diffing two snapshots.

pub mod event;
pub mod hist;
pub mod registry;
pub mod sink;
pub mod span;

pub use event::{CountEvent, Event, SampleEvent, SpanEnd};
pub use hist::{HistSnapshot, LogHistogram};
pub use registry::{Counter, MetricsSnapshot, Registry};
pub use sink::{read_jsonl, Aggregate, JsonlSink, Sink, SpanStat};
pub use span::{current_path, inherit_path, span, timer, PathGuard, SpanGuard, TimerGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Environment variable naming the JSONL output path.
pub const ENV_JSONL: &str = "FEDKNOW_OBS";

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: OnceLock<State> = OnceLock::new();

struct State {
    registry: Registry,
    jsonl: Option<JsonlSink>,
}

fn state() -> &'static State {
    STATE.get_or_init(|| {
        let jsonl = std::env::var(ENV_JSONL).ok().and_then(|path| {
            JsonlSink::create(&path)
                .map_err(|e| eprintln!("fedknow-obs: cannot open {ENV_JSONL}={path}: {e}"))
                .ok()
        });
        State {
            registry: Registry::new(),
            jsonl,
        }
    })
}

/// Whether observability is on. One relaxed atomic load — this is the
/// entire cost of every instrumentation site when disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable observability if `FEDKNOW_OBS` is set in the environment
/// (attaching the JSONL sink to its path). Idempotent; returns whether
/// observability is enabled afterwards.
pub fn init_from_env() -> bool {
    if !is_enabled() && std::env::var_os(ENV_JSONL).is_some() {
        state();
        ENABLED.store(true, Ordering::Release);
    }
    is_enabled()
}

/// Enable the in-memory registry from code (the JSONL sink is still
/// attached only when `FEDKNOW_OBS` is set). Idempotent.
pub fn enable() {
    state();
    ENABLED.store(true, Ordering::Release);
}

/// Add `delta` to the counter `name`. No-op when disabled.
pub fn count(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.add(name, delta);
    if s.jsonl.is_some() {
        dispatch(&Event::Count(CountEvent {
            name: name.to_string(),
            delta,
        }));
    }
}

/// Record `value` into the histogram `name`. No-op when disabled.
pub fn record(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    let s = state();
    s.registry.record(name, value);
    if s.jsonl.is_some() {
        dispatch(&Event::Sample(SampleEvent {
            name: name.to_string(),
            value,
        }));
    }
}

/// Record into the registry without emitting a sink event (spans emit
/// their own richer event).
pub(crate) fn record_in_registry(name: &str, value: u64) {
    if is_enabled() {
        state().registry.record(name, value);
    }
}

/// Send an event to the JSONL sink, if attached.
pub(crate) fn dispatch(event: &Event) {
    if !is_enabled() {
        return;
    }
    if let Some(j) = &state().jsonl {
        j.emit(event);
    }
}

/// Open a span with a formatted name (`obs_span!("client.{c}")`)
/// without paying for the `format!` when observability is disabled:
/// the arguments are only evaluated behind the enabled check.
#[macro_export]
macro_rules! obs_span {
    ($($arg:tt)*) => {
        if $crate::is_enabled() {
            $crate::span(&format!($($arg)*))
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// A copy of the global registry, or `None` while disabled.
pub fn snapshot() -> Option<MetricsSnapshot> {
    is_enabled().then(|| state().registry.snapshot())
}

/// Flush the JSONL sink (call at the end of a run; the global sink is
/// never dropped).
pub fn flush() {
    if is_enabled() {
        if let Some(j) = &state().jsonl {
            j.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global facade is process-wide state, so the whole sequence
    /// lives in one test: disabled behaviour first, then enable and
    /// exercise every entry point.
    #[test]
    fn facade_lifecycle() {
        // Disabled (no FEDKNOW_OBS in the test environment, `enable`
        // not yet called): everything is inert.
        assert!(!is_enabled());
        count("lifecycle.c", 5);
        record("lifecycle.h", 5);
        {
            let _t = timer("lifecycle.t_ns");
            let _s = span("lifecycle_span");
            assert_eq!(current_path(), "");
        }
        assert!(snapshot().is_none());
        assert!(!init_from_env());

        enable();
        assert!(is_enabled());
        // The disabled-phase calls must have left no trace.
        let s0 = snapshot().unwrap();
        assert!(!s0.counters.contains_key("lifecycle.c"));
        assert!(!s0.hists.contains_key("lifecycle.h"));

        count("lifecycle.c", 5);
        count("lifecycle.c", 2);
        record("lifecycle.h", 40);
        {
            let _t = timer("lifecycle.t_ns");
            let outer = span("lifecycle_outer");
            {
                let _inner = span("lifecycle_inner");
                assert_eq!(current_path(), "lifecycle_outer/lifecycle_inner");
            }
            assert_eq!(current_path(), "lifecycle_outer");
            drop(outer);
            assert_eq!(current_path(), "");
        }
        let s = snapshot().unwrap().since(&s0);
        assert_eq!(s.counters["lifecycle.c"], 7);
        assert_eq!(s.hists["lifecycle.h"].count(), 1);
        assert_eq!(s.hists["lifecycle.t_ns"].count(), 1);
        assert_eq!(s.hists["span.lifecycle_outer_ns"].count(), 1);
        assert_eq!(s.hists["span.lifecycle_inner_ns"].count(), 1);

        // Worker-thread path inheritance.
        let root = span("lifecycle_root");
        let path = current_path();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _g = inherit_path(&path);
                let _c = span("lifecycle_worker");
                assert_eq!(current_path(), "lifecycle_root/lifecycle_worker");
            });
        });
        assert_eq!(current_path(), "lifecycle_root");
        drop(root);
        flush(); // no JSONL sink attached; must be a no-op
    }
}
