//! The flight recorder: per-thread, fixed-capacity ring buffers of
//! compact timestamped records.
//!
//! Every instrumentation event (span begin/end, counter delta, gauge
//! update, series point, fault injection, verify violation, free-form
//! note) is mirrored into the recording thread's ring. Rings are
//! bounded — `FEDKNOW_TRACE_CAP` records per thread, default 65 536 —
//! so a run of any length holds only the most recent window, like an
//! aircraft black box. When a dump trigger fires (panic, strict verify
//! violation, injected fault, explicit [`crate::dump_now`]), every
//! ring is drained into a postmortem bundle (see [`crate::bundle`]).
//!
//! ## Cost model
//!
//! The recorder follows the facade's contract: while observability is
//! disabled, every record call is one relaxed atomic load. When
//! enabled, a record is a thread-local borrow, an uncontended
//! mutex lock (contended only while a dump drains), and
//! a slot write — bounded memory, no reallocation after the ring
//! fills. `FEDKNOW_TRACE_CAP=0` switches recording off entirely while
//! the rest of the observability stack stays up.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Environment variable bounding each thread's ring, in records.
/// `0` disables recording.
pub const ENV_TRACE_CAP: &str = "FEDKNOW_TRACE_CAP";

/// Default per-thread ring capacity, in records.
pub const DEFAULT_TRACE_CAP: usize = 65_536;

/// One flight-recorder record: what happened ([`RingData`]), when
/// (nanoseconds since the process-wide recording epoch), and in which
/// global round (the ambient [`crate::round_index`] at record time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingRecord {
    /// Nanoseconds since the recording epoch (first enable).
    pub ts_ns: u64,
    /// Ambient global round index at record time.
    pub round: u64,
    /// The event payload.
    pub data: RingData,
}

/// The payload of a flight-recorder record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RingData {
    /// A span opened (full slash-joined path, own name included).
    Begin {
        /// Slash-joined span path, e.g. `run/task.0/round.2/client.1`.
        path: String,
    },
    /// A span closed.
    End {
        /// Slash-joined span path (matches the opening `Begin`).
        path: String,
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A counter was bumped.
    Count {
        /// Counter name.
        name: String,
        /// Increment.
        delta: u64,
    },
    /// A histogram sample was recorded.
    Sample {
        /// Histogram name.
        name: String,
        /// Sampled value.
        value: u64,
    },
    /// A gauge was set.
    Gauge {
        /// Gauge name.
        name: String,
        /// New value.
        value: f64,
    },
    /// A series point was appended.
    Point {
        /// Series name.
        name: String,
        /// Point index (usually a round).
        index: u64,
        /// Point value.
        value: f64,
    },
    /// A fault-plan injection hit (crash, straggle, lost upload, …).
    Fault {
        /// Client the fault hit.
        client: u64,
        /// Fault kind label (`crash`, `upload_rejected`, …).
        kind: String,
        /// Kind-specific detail (mirrors `FaultEvent::detail`).
        detail: u64,
    },
    /// A runtime invariant check failed (`FEDKNOW_VERIFY`).
    Violation {
        /// Check name (e.g. `integrator.rotation`).
        check: String,
        /// Human-readable violation detail.
        detail: String,
    },
    /// A free-form marker (checkpoint/resume boundaries, panics, …).
    Note {
        /// Marker text.
        note: String,
    },
    /// One point of the four-phase wire message lifecycle
    /// (`enq` → `out` → `in` → `handled`, plus `drop` for attempts
    /// burned by the fault injector). `trace`/`span` tie the record to
    /// the frame's embedded trace context (`fedknow_fl::framing::TraceCtx`);
    /// `peer_ts_ns` carries the *sender's* send timestamp on
    /// receive-side records (zero otherwise) for cross-process clock
    /// alignment.
    Wire {
        /// Lifecycle phase: `enq`, `out`, `in`, `handled`, or `drop`.
        phase: String,
        /// Connection / client id the message moved on.
        conn: u64,
        /// Run-wide trace id.
        trace: u64,
        /// The frame's wire-span id.
        span: u64,
        /// Sender-side parent span id (0 = none).
        parent: u64,
        /// Message kind label (`upload`, `ack`, …).
        msg: String,
        /// Payload bytes of the message.
        bytes: u64,
        /// Sender's send timestamp (receive-side records; 0 otherwise).
        peer_ts_ns: u64,
    },
}

/// A fixed-capacity overwrite-oldest ring of [`RingRecord`]s.
#[derive(Debug)]
pub struct RingBuf {
    cap: usize,
    records: Vec<RingRecord>,
    /// Next overwrite position once `records` reached `cap`.
    head: usize,
    /// Records overwritten (lost to the window bound).
    dropped: u64,
}

impl RingBuf {
    /// An empty ring holding at most `cap` records.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            records: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Append a record, overwriting the oldest once full.
    pub fn push(&mut self, r: RingRecord) {
        if self.cap == 0 {
            return;
        }
        if self.records.len() < self.cap {
            self.records.push(r);
        } else {
            self.records[self.head] = r;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records overwritten so far (the window that was lost).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// A copy of the held records, oldest first. The ring is left
    /// intact, so successive dumps each capture the current window.
    pub fn drain_ordered(&self) -> Vec<RingRecord> {
        let mut out = Vec::with_capacity(self.records.len());
        out.extend_from_slice(&self.records[self.head..]);
        out.extend_from_slice(&self.records[..self.head]);
        out
    }
}

/// One thread's ring plus its label, as registered globally so dumps
/// can reach rings of threads that have already exited.
struct ThreadRing {
    label: String,
    buf: Arc<Mutex<RingBuf>>,
}

/// Poison-tolerant lock: the recorder must stay usable from the
/// panic hook even if a panic unwound through a lock holder.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static RING_ON: AtomicBool = AtomicBool::new(false);
static RINGS: Mutex<Vec<ThreadRing>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static CAP: OnceLock<usize> = OnceLock::new();

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<RingBuf>>>> = const { RefCell::new(None) };
}

/// Whether the flight recorder is recording. One relaxed atomic load.
#[inline]
pub fn ring_enabled() -> bool {
    RING_ON.load(Ordering::Relaxed)
}

/// Per-thread ring capacity (`FEDKNOW_TRACE_CAP`, parsed once).
pub fn ring_cap() -> usize {
    *CAP.get_or_init(|| {
        std::env::var(ENV_TRACE_CAP)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_TRACE_CAP)
    })
}

/// Switch recording on (idempotent; stays on for the process). Called
/// by [`crate::enable`]/[`crate::init_from_env`] — the recorder is on
/// whenever observability is.
pub(crate) fn enable_ring() {
    if ring_cap() == 0 {
        return;
    }
    EPOCH.get_or_init(Instant::now);
    RING_ON.store(true, Ordering::Release);
}

/// Nanoseconds since the recording epoch.
pub(crate) fn epoch_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds since this process's recording epoch — the timescale of
/// every ring record and of the send timestamps embedded in wire trace
/// contexts. Public so the transport can stamp frames on the same
/// clock the recorder uses; each process has its own epoch, and the
/// trace merger estimates the offsets between them.
pub fn now_ns() -> u64 {
    epoch_ns()
}

/// Record into the current thread's ring. No-op (one relaxed load)
/// while the recorder is off.
#[inline]
pub(crate) fn record(data: RingData) {
    if !ring_enabled() {
        return;
    }
    record_at(epoch_ns(), data);
}

/// Record with an explicit timestamp (span opens reuse their already
/// taken `Instant`).
pub(crate) fn record_at(ts_ns: u64, data: RingData) {
    if !ring_enabled() {
        return;
    }
    let rec = RingRecord {
        ts_ns,
        round: crate::round_index(),
        data,
    };
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let arc = l.get_or_insert_with(register_current_thread);
        lock(arc).push(rec);
    });
}

/// Create + globally register the calling thread's ring.
fn register_current_thread() -> Arc<Mutex<RingBuf>> {
    let buf = Arc::new(Mutex::new(RingBuf::new(ring_cap())));
    lock(&RINGS).push(ThreadRing {
        label: format!("{:?}", std::thread::current().id()),
        buf: Arc::clone(&buf),
    });
    buf
}

/// Drain every registered ring: `(thread label, dropped, records)` per
/// thread, oldest record first, threads in registration order. Rings
/// are left intact.
pub fn drain_all() -> Vec<(String, u64, Vec<RingRecord>)> {
    lock(&RINGS)
        .iter()
        .map(|t| {
            let b = lock(&t.buf);
            (t.label.clone(), b.dropped(), b.drain_ordered())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, note: &str) -> RingRecord {
        RingRecord {
            ts_ns: ts,
            round: 0,
            data: RingData::Note {
                note: note.to_string(),
            },
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_reports_drops() {
        let mut r = RingBuf::new(3);
        assert!(r.is_empty());
        for i in 0..5u64 {
            r.push(rec(i, &format!("n{i}")));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.drain_ordered().iter().map(|x| x.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        // Drains are non-destructive.
        assert_eq!(r.drain_ordered().len(), 3);
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut r = RingBuf::new(0);
        r.push(rec(1, "x"));
        assert!(r.is_empty());
        assert!(r.drain_ordered().is_empty());
    }

    #[test]
    fn ring_record_roundtrips_through_json() {
        let r = RingRecord {
            ts_ns: 42,
            round: 3,
            data: RingData::Fault {
                client: 2,
                kind: "crash".to_string(),
                detail: 0,
            },
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: RingRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["data"]["Fault"]["kind"].as_str(), Some("crash"));
    }
}
