//! FLOP/byte performance accounting for the numerical kernels.
//!
//! A [`PerfCounter`] is the hot-path variant of
//! [`CounterHandle`](crate::handle::CounterHandle): it feeds the pair of
//! registry counters `flops.<kernel>` / `bytes.<kernel>` **only** — no
//! ring record, no JSONL event — because kernel call sites (every
//! `matmul`, every conv image) fire orders of magnitude more often than
//! round-level metrics and per-call sink events would dominate the run.
//! The JSONL stream still sees the totals: [`flush_deltas`] (called from
//! [`flush`](crate::flush) at the end of a run) emits one `Count` event
//! per perf counter carrying the delta since the previous flush.
//!
//! Each `op` also adds to per-thread running totals; span guards
//! snapshot those at open and attribute the difference to the span on
//! close (see [`SpanPerf`](crate::event::SpanPerf)), which is what lets
//! `obs_report` print *achieved GFLOP/s per phase*.
//!
//! Kernel namespaces are disjoint by construction: `conv2d_fwd`/
//! `conv2d_bwd` call the uncounted `*_raw` GEMM variants internally and
//! do their own accounting, so `flops.*` counters can be summed without
//! double counting.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::{CountEvent, Event};
use crate::registry::Counter;

thread_local! {
    static TL_FLOPS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A per-kernel FLOP/byte counter pair whose registry slots are
/// resolved once. Declare `static` at the kernel site:
///
/// ```
/// use fedknow_obs::PerfCounter;
///
/// static MATMUL: PerfCounter = PerfCounter::new("matmul");
///
/// fn matmul_site(m: u64, k: u64, n: u64) {
///     // ... the actual kernel ...
///     MATMUL.op(2 * m * k * n, 4 * (m * k + k * n + m * n));
/// }
/// ```
pub struct PerfCounter {
    kernel: &'static str,
    cell: OnceLock<(Arc<Counter>, Arc<Counter>)>,
}

impl PerfCounter {
    /// Declare a handle (usable in `static` position). `kernel` is the
    /// bare kernel name; the registry metrics are `flops.<kernel>` and
    /// `bytes.<kernel>`.
    pub const fn new(kernel: &'static str) -> Self {
        Self {
            kernel,
            cell: OnceLock::new(),
        }
    }

    /// The bare kernel name.
    pub fn kernel(&self) -> &'static str {
        self.kernel
    }

    /// Account one kernel invocation: `flops` floating-point operations
    /// performed, `bytes` bytes moved (compulsory operand traffic).
    /// No-op (one relaxed load) when observability is disabled; two
    /// atomic adds plus two thread-local adds when enabled.
    #[inline]
    pub fn op(&self, flops: u64, bytes: u64) {
        if !crate::is_enabled() {
            return;
        }
        let (f, b) = self.cell.get_or_init(|| {
            let r = &crate::state().registry;
            (
                r.counter(&format!("flops.{}", self.kernel)),
                r.counter(&format!("bytes.{}", self.kernel)),
            )
        });
        f.add(flops);
        b.add(bytes);
        TL_FLOPS.with(|c| c.set(c.get().wrapping_add(flops)));
        TL_BYTES.with(|c| c.set(c.get().wrapping_add(bytes)));
    }
}

/// This thread's running `(flops, bytes)` totals across all kernels.
/// Span guards diff two reads of this to attribute work to a span.
pub fn thread_totals() -> (u64, u64) {
    (TL_FLOPS.with(Cell::get), TL_BYTES.with(Cell::get))
}

/// Perf counter totals already emitted to the JSONL sink, by name.
static EMITTED: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Whether `name` belongs to the perf namespaces that are accumulated
/// in the registry only and emitted to JSONL as deltas at flush time.
pub(crate) fn is_perf_metric(name: &str) -> bool {
    name.starts_with("flops.") || name.starts_with("bytes.") || name.starts_with("alloc.")
}

/// Emit the growth of every `flops.*` / `bytes.*` / `alloc.*` registry
/// counter since the previous call as `Count` events on the JSONL sink.
/// Called from [`flush`](crate::flush); safe to call repeatedly.
pub(crate) fn flush_deltas() {
    if !crate::is_enabled() {
        return;
    }
    crate::alloc::sync_registry();
    let snap = crate::snapshot();
    let Some(snap) = snap else { return };
    let mut emitted = EMITTED.lock().expect("perf flush mutex");
    for (name, &total) in &snap.counters {
        if !is_perf_metric(name) {
            continue;
        }
        let prev = emitted.get(name).copied().unwrap_or(0);
        if total > prev {
            crate::dispatch(&Event::Count(CountEvent {
                name: name.clone(),
                delta: total - prev,
            }));
            emitted.insert(name.clone(), total);
        }
    }
}

// Enabled-path accumulation is covered by the facade lifecycle test in
// `lib.rs`: enable/disable sequencing is process-global, so all
// global-state coverage lives in that single test.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_namespace_filter() {
        assert!(is_perf_metric("flops.matmul"));
        assert!(is_perf_metric("bytes.conv2d_fwd"));
        assert!(is_perf_metric("alloc.count"));
        assert!(!is_perf_metric("qp.fast_path"));
        assert!(!is_perf_metric("comm.upload_bytes"));
    }
}
