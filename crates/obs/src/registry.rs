//! The metrics registry: named counters and histograms, plus immutable
//! snapshots that can be diffed to attribute metrics to a single run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::{HistSnapshot, LogHistogram};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A registry of named metrics. Metric handles are created on first
/// use; the maps are only locked to look a handle up, never while
/// recording, so concurrent recording on existing metrics is lock-free.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    hists: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The histogram named `name`, created if absent.
    pub fn hist(&self, name: &str) -> Arc<LogHistogram> {
        let mut map = self.hists.lock();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LogHistogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Add `delta` to the counter named `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Record `value` into the histogram named `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.hist(name).record(value);
    }

    /// Copy every metric into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let hists = self
            .hists
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, hists }
    }
}

/// An immutable copy of a [`Registry`]'s state at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// The metrics that accumulated between `earlier` and `self`
    /// (both from the same registry). Metrics absent from `earlier`
    /// are attributed entirely to the interval.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v - earlier.counters.get(k).copied().unwrap_or(0);
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let empty = HistSnapshot::default();
        let hists = self
            .hists
            .iter()
            .filter_map(|(k, v)| {
                let d = v.since(earlier.hists.get(k).unwrap_or(&empty));
                (d.count() > 0).then(|| (k.clone(), d))
            })
            .collect();
        MetricsSnapshot { counters, hists }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_accumulate() {
        let r = Registry::new();
        r.add("bytes", 10);
        r.add("bytes", 5);
        r.record("lat", 100);
        r.record("lat", 300);
        let s = r.snapshot();
        assert_eq!(s.counters["bytes"], 15);
        assert_eq!(s.hists["lat"].count(), 2);
        assert_eq!(s.hists["lat"].sum(), 400);
    }

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(1);
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    fn snapshot_diff_isolates_interval() {
        let r = Registry::new();
        r.add("n", 7);
        r.record("h", 50);
        let before = r.snapshot();
        r.add("n", 3);
        r.add("m", 1);
        r.record("h", 60);
        let d = r.snapshot().since(&before);
        assert_eq!(d.counters["n"], 3);
        assert_eq!(d.counters["m"], 1);
        assert_eq!(d.hists["h"].count(), 1);
        assert_eq!(d.hists["h"].sum(), 60);
        // Unchanged metrics drop out of the diff entirely.
        let none = r.snapshot().since(&r.snapshot());
        assert!(none.counters.is_empty() && none.hists.is_empty());
    }
}
