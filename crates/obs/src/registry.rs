//! The metrics registry: named counters, histograms, gauges and
//! round-indexed time series, plus immutable snapshots that can be
//! diffed to attribute metrics to a single run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::{HistSnapshot, LogHistogram};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: the last-written `f64`, bit-cast into an atomic so writers
/// never lock.
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// A round-indexed time series: `(index, value)` points in push order.
/// Indices are typically global round numbers (see
/// [`round_index`](crate::round_index)); several points may share an
/// index (e.g. one per client within a round).
#[derive(Default)]
pub struct Series(Mutex<Vec<(u64, f64)>>);

impl Series {
    /// Append one point.
    pub fn push(&self, index: u64, value: f64) {
        self.0.lock().push((index, value));
    }

    /// Copy of the points, sorted by index (ties keep push order).
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut pts = self.0.lock().clone();
        pts.sort_by_key(|&(i, _)| i);
        pts
    }
}

/// A registry of named metrics. Metric handles are created on first
/// use; the maps are only locked to look a handle up, never while
/// recording, so concurrent recording on existing metrics is lock-free.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    hists: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    series: Mutex<BTreeMap<String, Arc<Series>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The histogram named `name`, created if absent.
    pub fn hist(&self, name: &str) -> Arc<LogHistogram> {
        let mut map = self.hists.lock();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LogHistogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// The gauge named `name`, created if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// The series named `name`, created if absent.
    pub fn series(&self, name: &str) -> Arc<Series> {
        let mut map = self.series.lock();
        if let Some(s) = map.get(name) {
            return Arc::clone(s);
        }
        let s = Arc::new(Series::default());
        map.insert(name.to_string(), Arc::clone(&s));
        s
    }

    /// Add `delta` to the counter named `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Record `value` into the histogram named `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.hist(name).record(value);
    }

    /// Set the gauge named `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// Append a point to the series named `name`.
    pub fn push_series(&self, name: &str, index: u64, value: f64) {
        self.series(name).push(index, value);
    }

    /// Copy every metric into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let hists = self
            .hists
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let series = self
            .series
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.points()))
            .collect();
        MetricsSnapshot {
            counters,
            hists,
            gauges,
            series,
        }
    }
}

/// An immutable copy of a [`Registry`]'s state at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Series points `(index, value)` by name, index-sorted.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MetricsSnapshot {
    /// The metrics that accumulated between `earlier` and `self`
    /// (both from the same registry). Metrics absent from `earlier`
    /// are attributed entirely to the interval. Gauges keep their
    /// latest value when it changed; series keep the points appended
    /// after `earlier` (by count — exact when the interval endpoints
    /// are quiescent, which is how [`crate::snapshot`] diffing is used).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v - earlier.counters.get(k).copied().unwrap_or(0);
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let empty = HistSnapshot::default();
        let hists = self
            .hists
            .iter()
            .filter_map(|(k, v)| {
                let d = v.since(earlier.hists.get(k).unwrap_or(&empty));
                (d.count() > 0).then(|| (k.clone(), d))
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .filter_map(|(k, &v)| {
                let changed = earlier.gauges.get(k) != Some(&v);
                changed.then(|| (k.clone(), v))
            })
            .collect();
        let series = self
            .series
            .iter()
            .filter_map(|(k, v)| {
                let seen = earlier.series.get(k).map(|s| s.len()).unwrap_or(0);
                (v.len() > seen).then(|| (k.clone(), v[seen..].to_vec()))
            })
            .collect();
        MetricsSnapshot {
            counters,
            hists,
            gauges,
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_accumulate() {
        let r = Registry::new();
        r.add("bytes", 10);
        r.add("bytes", 5);
        r.record("lat", 100);
        r.record("lat", 300);
        let s = r.snapshot();
        assert_eq!(s.counters["bytes"], 15);
        assert_eq!(s.hists["lat"].count(), 2);
        assert_eq!(s.hists["lat"].sum(), 400);
    }

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(1);
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    fn gauges_overwrite_and_series_accumulate() {
        let r = Registry::new();
        r.set_gauge("temp", 1.5);
        r.set_gauge("temp", 2.5);
        r.push_series("acc", 3, 0.7);
        r.push_series("acc", 1, 0.5);
        r.push_series("acc", 1, 0.6);
        let s = r.snapshot();
        assert_eq!(s.gauges["temp"], 2.5);
        // Points come back index-sorted, ties in push order.
        assert_eq!(s.series["acc"], vec![(1, 0.5), (1, 0.6), (3, 0.7)]);
    }

    #[test]
    fn since_diffs_gauges_and_series() {
        let r = Registry::new();
        r.set_gauge("a", 1.0);
        r.set_gauge("b", 2.0);
        r.push_series("s", 0, 0.1);
        let before = r.snapshot();
        r.set_gauge("a", 3.0);
        r.push_series("s", 1, 0.2);
        let d = r.snapshot().since(&before);
        assert_eq!(d.gauges.get("a"), Some(&3.0));
        assert!(!d.gauges.contains_key("b"), "unchanged gauge drops out");
        assert_eq!(d.series["s"], vec![(1, 0.2)]);
        let none = r.snapshot().since(&r.snapshot());
        assert!(none.gauges.is_empty() && none.series.is_empty());
    }

    #[test]
    fn snapshot_diff_isolates_interval() {
        let r = Registry::new();
        r.add("n", 7);
        r.record("h", 50);
        let before = r.snapshot();
        r.add("n", 3);
        r.add("m", 1);
        r.record("h", 60);
        let d = r.snapshot().since(&before);
        assert_eq!(d.counters["n"], 3);
        assert_eq!(d.counters["m"], 1);
        assert_eq!(d.hists["h"].count(), 1);
        assert_eq!(d.hists["h"].sum(), 60);
        // Unchanged metrics drop out of the diff entirely.
        let none = r.snapshot().since(&r.snapshot());
        assert!(none.counters.is_empty() && none.hists.is_empty());
    }
}
