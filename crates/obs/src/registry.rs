//! The metrics registry: named counters, histograms, gauges,
//! round-indexed time series, quantile sketches and cohort sets, plus
//! immutable snapshots that can be diffed to attribute metrics to a
//! single run.
//!
//! ## Bounded cardinality
//!
//! Dynamic metric names are the classic telemetry memory leak: one
//! name per client and the registry grows O(clients). Two governors
//! keep it O(1):
//!
//! * **Name cap** — each instrument kind holds at most
//!   [`Registry::max_names`] distinct names (`FEDKNOW_OBS_MAX_NAMES`,
//!   default [`DEFAULT_MAX_NAMES`]). Creation attempts past the cap
//!   are routed to a shared per-kind `obs.overflow` instrument and
//!   counted in the `obs.name_overflow` counter — loud, not silent.
//! * **Series point cap** — every [`Series`] keeps at most
//!   [`SERIES_POINT_CAP`] points; later pushes are dropped and counted
//!   in `obs.series_dropped`. Simulation series are O(rounds) and
//!   never get close; the cap is the backstop that makes worst-case
//!   memory a constant.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cohort::{CohortSet, CohortSnapshot};
use crate::hist::{HistSnapshot, LogHistogram};
use crate::sketch::{Sketch, SketchSnapshot};

/// Environment variable capping distinct dynamic metric names per
/// instrument kind.
pub const ENV_MAX_NAMES: &str = "FEDKNOW_OBS_MAX_NAMES";

/// Default per-kind name cap.
pub const DEFAULT_MAX_NAMES: usize = 512;

/// Hard cap on points retained per series (~1 MiB per series worst
/// case). Simulations produce O(rounds) points and stay far below.
pub const SERIES_POINT_CAP: usize = 65_536;

/// The shared name every over-cap write folds into.
pub const OVERFLOW_NAME: &str = "obs.overflow";

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: the last-written `f64`, bit-cast into an atomic so writers
/// never lock.
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// A round-indexed time series: `(index, value)` points in push order.
/// Indices are typically global round numbers (see
/// [`round_index`](crate::round_index)); several points may share an
/// index (e.g. one per client within a round). Holds at most
/// [`SERIES_POINT_CAP`] points; overflow pushes are dropped and
/// counted.
pub struct Series {
    points: Mutex<Vec<(u64, f64)>>,
    dropped: AtomicU64,
}

impl Default for Series {
    fn default() -> Self {
        Self {
            points: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }
}

impl Series {
    /// Append one point (dropped and counted once the point cap is
    /// reached).
    pub fn push(&self, index: u64, value: f64) {
        let mut pts = self.points.lock();
        if pts.len() >= SERIES_POINT_CAP {
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        pts.push((index, value));
    }

    /// Copy of the points, sorted by index (ties keep push order).
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut pts = self.points.lock().clone();
        pts.sort_by_key(|&(i, _)| i);
        pts
    }

    /// Points dropped by the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }
}

/// A registry of named metrics. Metric handles are created on first
/// use; the maps are only locked to look a handle up, never while
/// recording, so concurrent recording on existing metrics is lock-free.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    hists: Mutex<BTreeMap<String, Arc<LogHistogram>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    series: Mutex<BTreeMap<String, Arc<Series>>>,
    sketches: Mutex<BTreeMap<String, Arc<Sketch>>>,
    cohorts: Mutex<BTreeMap<String, Arc<CohortSet>>>,
    /// Per-kind cap on distinct names.
    max_names: usize,
    /// Writes routed to an overflow instrument because of the cap.
    overflow: AtomicU64,
    /// Shared per-kind sinks for over-cap names.
    overflow_counter: Arc<Counter>,
    overflow_hist: Arc<LogHistogram>,
    overflow_gauge: Arc<Gauge>,
    overflow_series: Arc<Series>,
    overflow_sketch: Arc<Sketch>,
    overflow_cohort: Arc<CohortSet>,
}

impl Default for Registry {
    fn default() -> Self {
        let max = std::env::var(ENV_MAX_NAMES)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(8))
            .unwrap_or(DEFAULT_MAX_NAMES);
        Self::with_max_names(max)
    }
}

impl Registry {
    /// An empty registry with the environment-configured name cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry with an explicit per-kind name cap.
    pub fn with_max_names(max_names: usize) -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            series: Mutex::new(BTreeMap::new()),
            sketches: Mutex::new(BTreeMap::new()),
            cohorts: Mutex::new(BTreeMap::new()),
            max_names: max_names.max(1),
            overflow: AtomicU64::new(0),
            overflow_counter: Arc::new(Counter::default()),
            overflow_hist: Arc::new(LogHistogram::new()),
            overflow_gauge: Arc::new(Gauge::default()),
            overflow_series: Arc::new(Series::default()),
            overflow_sketch: Arc::new(Sketch::default()),
            overflow_cohort: Arc::new(CohortSet::default()),
        }
    }

    /// The per-kind cap on distinct metric names.
    pub fn max_names(&self) -> usize {
        self.max_names
    }

    /// Writes that hit the name cap so far.
    pub fn name_overflow(&self) -> u64 {
        self.overflow.load(Relaxed)
    }

    /// Look up or create a named slot, honouring the name cap.
    fn slot<T>(
        &self,
        map: &Mutex<BTreeMap<String, Arc<T>>>,
        name: &str,
        make: impl FnOnce() -> T,
        overflow: &Arc<T>,
    ) -> Arc<T> {
        let mut map = map.lock();
        if let Some(v) = map.get(name) {
            return Arc::clone(v);
        }
        if map.len() >= self.max_names {
            self.overflow.fetch_add(1, Relaxed);
            return Arc::clone(overflow);
        }
        let v = Arc::new(make());
        map.insert(name.to_string(), Arc::clone(&v));
        v
    }

    /// The counter named `name`, created if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.slot(
            &self.counters,
            name,
            Counter::default,
            &self.overflow_counter,
        )
    }

    /// The histogram named `name`, created if absent.
    pub fn hist(&self, name: &str) -> Arc<LogHistogram> {
        self.slot(&self.hists, name, LogHistogram::new, &self.overflow_hist)
    }

    /// The gauge named `name`, created if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.slot(&self.gauges, name, Gauge::default, &self.overflow_gauge)
    }

    /// The series named `name`, created if absent.
    pub fn series(&self, name: &str) -> Arc<Series> {
        self.slot(&self.series, name, Series::default, &self.overflow_series)
    }

    /// The quantile sketch named `name`, created if absent.
    pub fn sketch(&self, name: &str) -> Arc<Sketch> {
        self.slot(&self.sketches, name, Sketch::default, &self.overflow_sketch)
    }

    /// The cohort set named `name`, created if absent.
    pub fn cohort(&self, name: &str) -> Arc<CohortSet> {
        self.slot(
            &self.cohorts,
            name,
            CohortSet::default,
            &self.overflow_cohort,
        )
    }

    /// Add `delta` to the counter named `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Record `value` into the histogram named `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.hist(name).record(value);
    }

    /// Set the gauge named `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// Append a point to the series named `name`.
    pub fn push_series(&self, name: &str, index: u64, value: f64) {
        self.series(name).push(index, value);
    }

    /// Record `value` into the sketch named `name`.
    pub fn record_sketch(&self, name: &str, value: f64) {
        self.sketch(name).record(value);
    }

    /// Record a client-keyed value into the cohort set named `name`
    /// (and into the same-named sketch, so the global distribution is
    /// queryable alongside the per-cohort fold).
    pub fn record_client(&self, name: &str, client: u64, value: f64) {
        self.cohort(name).record(client, value);
        self.sketch(name).record(value);
    }

    /// Fold every sketch's current round into its cumulative sketch;
    /// returns the per-name folded-round snapshots (non-empty only).
    pub fn fold_sketches(&self) -> Vec<(String, SketchSnapshot)> {
        let handles: Vec<(String, Arc<Sketch>)> = self
            .sketches
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        handles
            .into_iter()
            .filter_map(|(name, s)| {
                let snap = s.fold_round();
                (snap.count > 0).then_some((name, snap))
            })
            .collect()
    }

    /// Copy every metric into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let mut hists: BTreeMap<String, HistSnapshot> = self
            .hists
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let series_map = self.series.lock();
        let mut dropped: u64 = series_map.values().map(|s| s.dropped()).sum();
        dropped += self.overflow_series.dropped();
        let series = series_map
            .iter()
            .map(|(k, v)| (k.clone(), v.points()))
            .collect();
        drop(series_map);
        let mut sketches: BTreeMap<String, SketchSnapshot> = self
            .sketches
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let cohorts = self
            .cohorts
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        // Governor visibility: over-cap writes and their shared sinks.
        let overflow = self.overflow.load(Relaxed);
        if overflow > 0 {
            counters.insert("obs.name_overflow".to_string(), overflow);
            if self.overflow_counter.get() > 0 {
                counters.insert(OVERFLOW_NAME.to_string(), self.overflow_counter.get());
            }
            let oh = self.overflow_hist.snapshot();
            if oh.count() > 0 {
                hists.insert(OVERFLOW_NAME.to_string(), oh);
            }
            let os = self.overflow_sketch.snapshot();
            if os.count > 0 {
                sketches.insert(OVERFLOW_NAME.to_string(), os);
            }
        }
        if dropped > 0 {
            counters.insert("obs.series_dropped".to_string(), dropped);
        }
        MetricsSnapshot {
            counters,
            hists,
            gauges,
            series,
            sketches,
            cohorts,
        }
    }
}

/// An immutable copy of a [`Registry`]'s state at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Series points `(index, value)` by name, index-sorted.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
    /// Quantile-sketch snapshots by name.
    pub sketches: BTreeMap<String, SketchSnapshot>,
    /// Cohort-set snapshots by name.
    pub cohorts: BTreeMap<String, CohortSnapshot>,
}

impl MetricsSnapshot {
    /// The metrics that accumulated between `earlier` and `self`
    /// (both from the same registry). Metrics absent from `earlier`
    /// are attributed entirely to the interval. Gauges keep their
    /// latest value when it changed; series keep the points appended
    /// after `earlier` (by count — exact when the interval endpoints
    /// are quiescent, which is how [`crate::snapshot`] diffing is used).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v - earlier.counters.get(k).copied().unwrap_or(0);
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let empty = HistSnapshot::default();
        let hists = self
            .hists
            .iter()
            .filter_map(|(k, v)| {
                let d = v.since(earlier.hists.get(k).unwrap_or(&empty));
                (d.count() > 0).then(|| (k.clone(), d))
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .filter_map(|(k, &v)| {
                let changed = earlier.gauges.get(k) != Some(&v);
                changed.then(|| (k.clone(), v))
            })
            .collect();
        let series = self
            .series
            .iter()
            .filter_map(|(k, v)| {
                let seen = earlier.series.get(k).map(|s| s.len()).unwrap_or(0);
                (v.len() > seen).then(|| (k.clone(), v[seen..].to_vec()))
            })
            .collect();
        let empty_sketch = SketchSnapshot::default();
        let sketches = self
            .sketches
            .iter()
            .filter_map(|(k, v)| {
                let d = v.since(earlier.sketches.get(k).unwrap_or(&empty_sketch));
                (d.count > 0).then(|| (k.clone(), d))
            })
            .collect();
        let empty_cohort = CohortSnapshot::default();
        let cohorts = self
            .cohorts
            .iter()
            .filter_map(|(k, v)| {
                let d = v.since(earlier.cohorts.get(k).unwrap_or(&empty_cohort));
                (!d.cohorts.is_empty()).then(|| (k.clone(), d))
            })
            .collect();
        MetricsSnapshot {
            counters,
            hists,
            gauges,
            series,
            sketches,
            cohorts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_accumulate() {
        let r = Registry::new();
        r.add("bytes", 10);
        r.add("bytes", 5);
        r.record("lat", 100);
        r.record("lat", 300);
        let s = r.snapshot();
        assert_eq!(s.counters["bytes"], 15);
        assert_eq!(s.hists["lat"].count(), 2);
        assert_eq!(s.hists["lat"].sum(), 400);
    }

    #[test]
    fn handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(1);
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    fn gauges_overwrite_and_series_accumulate() {
        let r = Registry::new();
        r.set_gauge("temp", 1.5);
        r.set_gauge("temp", 2.5);
        r.push_series("acc", 3, 0.7);
        r.push_series("acc", 1, 0.5);
        r.push_series("acc", 1, 0.6);
        let s = r.snapshot();
        assert_eq!(s.gauges["temp"], 2.5);
        // Points come back index-sorted, ties in push order.
        assert_eq!(s.series["acc"], vec![(1, 0.5), (1, 0.6), (3, 0.7)]);
    }

    #[test]
    fn since_diffs_gauges_and_series() {
        let r = Registry::new();
        r.set_gauge("a", 1.0);
        r.set_gauge("b", 2.0);
        r.push_series("s", 0, 0.1);
        let before = r.snapshot();
        r.set_gauge("a", 3.0);
        r.push_series("s", 1, 0.2);
        let d = r.snapshot().since(&before);
        assert_eq!(d.gauges.get("a"), Some(&3.0));
        assert!(!d.gauges.contains_key("b"), "unchanged gauge drops out");
        assert_eq!(d.series["s"], vec![(1, 0.2)]);
        let none = r.snapshot().since(&r.snapshot());
        assert!(none.gauges.is_empty() && none.series.is_empty());
    }

    #[test]
    fn snapshot_diff_isolates_interval() {
        let r = Registry::new();
        r.add("n", 7);
        r.record("h", 50);
        let before = r.snapshot();
        r.add("n", 3);
        r.add("m", 1);
        r.record("h", 60);
        let d = r.snapshot().since(&before);
        assert_eq!(d.counters["n"], 3);
        assert_eq!(d.counters["m"], 1);
        assert_eq!(d.hists["h"].count(), 1);
        assert_eq!(d.hists["h"].sum(), 60);
        // Unchanged metrics drop out of the diff entirely.
        let none = r.snapshot().since(&r.snapshot());
        assert!(none.counters.is_empty() && none.hists.is_empty());
    }

    #[test]
    fn sketches_snapshot_and_diff() {
        let r = Registry::new();
        r.record_sketch("lat", 10.0);
        r.record_sketch("lat", 20.0);
        let before = r.snapshot();
        assert_eq!(before.sketches["lat"].count, 2);
        r.record_sketch("lat", 30.0);
        let d = r.snapshot().since(&before);
        assert_eq!(d.sketches["lat"].count, 1);
    }

    #[test]
    fn client_values_land_in_cohorts_and_sketch() {
        let r = Registry::new();
        for c in 0..100u64 {
            r.record_client("train_ns", c, c as f64);
        }
        let s = r.snapshot();
        assert_eq!(s.sketches["train_ns"].count, 100);
        assert_eq!(s.cohorts["train_ns"].total_count(), 100);
        assert!(s.cohorts["train_ns"].cohorts.len() <= 100);
    }

    #[test]
    fn fold_sketches_resets_rounds() {
        let r = Registry::new();
        r.record_sketch("lat", 5.0);
        let folded = r.fold_sketches();
        assert_eq!(folded.len(), 1);
        assert_eq!(folded[0].0, "lat");
        assert_eq!(folded[0].1.count, 1);
        // Nothing new this round: fold reports nothing, cumulative holds.
        assert!(r.fold_sketches().is_empty());
        assert_eq!(r.snapshot().sketches["lat"].count, 1);
    }

    #[test]
    fn name_cap_overflows_loudly() {
        let r = Registry::with_max_names(4);
        for i in 0..10 {
            r.add(&format!("dyn.{i}"), 1);
        }
        let s = r.snapshot();
        // Four real names were admitted; six writes overflowed.
        assert_eq!(s.counters["obs.name_overflow"], 6);
        assert_eq!(s.counters[OVERFLOW_NAME], 6);
        let named: usize = (0..10)
            .filter(|i| s.counters.contains_key(&format!("dyn.{i}")))
            .count();
        assert_eq!(named, 4);
        // Existing names keep working at the cap.
        r.add("dyn.0", 5);
        assert_eq!(r.counter("dyn.0").get(), 6);
    }

    #[test]
    fn series_point_cap_drops_and_counts() {
        let r = Registry::new();
        let s = r.series("cap_test");
        for i in 0..(SERIES_POINT_CAP as u64 + 10) {
            s.push(i, 1.0);
        }
        assert_eq!(s.dropped(), 10);
        assert_eq!(s.points().len(), SERIES_POINT_CAP);
        assert_eq!(r.snapshot().counters["obs.series_dropped"], 10);
    }
}
