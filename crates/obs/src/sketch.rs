//! Mergeable quantile sketch (DDSketch-style) with bounded memory.
//!
//! A [`QuantileSketch`] answers quantile queries over a stream of
//! non-negative values with a *relative* accuracy guarantee: for any
//! rank, the reported value is within `alpha` (default
//! [`DEFAULT_ALPHA`], 1%) of the exact order statistic at that rank.
//! Values are mapped to logarithmic buckets with base
//! `gamma = (1 + alpha) / (1 - alpha)`; a value `v > 0` lands in bucket
//! `ceil(log_gamma v)`, whose representative `2·gamma^k / (gamma + 1)`
//! is within `alpha` of every value the bucket can hold.
//!
//! Properties the telemetry plane relies on:
//!
//! * **Mergeable** — [`QuantileSketch::merge`] adds bucket counts, so
//!   merge is commutative and associative (proven by property tests).
//!   Per-client or per-shard sketches fold into one without losing the
//!   error bound.
//! * **Bounded** — at most [`MAX_BUCKETS`] distinct buckets are kept;
//!   beyond that the lowest buckets collapse together. High quantiles
//!   (the ones SLOs watch) keep their guarantee; only the extreme low
//!   tail degrades, and [`QuantileSketch::collapsed`] reports when.
//! * **Round fold** — the registry-level [`Sketch`] instrument keeps a
//!   *current-round* sketch and a *cumulative* sketch;
//!   [`Sketch::fold_round`] merges the round into the total and resets
//!   the round, which is what feeds the streaming health engine.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default relative accuracy: quantile estimates within 1%.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Hard cap on distinct buckets per sketch. At `alpha = 0.01` the span
/// from 1 ns to ~30 minutes needs ~1050 buckets, so 2048 never
/// collapses in practice while bounding worst-case memory to ~32 KiB.
pub const MAX_BUCKETS: usize = 2048;

/// Values at or below this magnitude land in the dedicated zero bucket
/// (log buckets cannot represent 0).
const MIN_POSITIVE: f64 = 1e-9;

/// A mergeable, relative-error-bounded quantile sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    /// Cached `1 / ln(gamma)`.
    inv_ln_gamma: f64,
    /// Sparse log-bucket counts keyed by `ceil(log_gamma v)`.
    buckets: BTreeMap<i32, u64>,
    /// Count of values `<= MIN_POSITIVE` (including all non-positives).
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Values folded into a surviving bucket by the [`MAX_BUCKETS`]
    /// bound; non-zero means low quantiles lost their guarantee.
    collapsed: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// An empty sketch with relative accuracy `alpha` (clamped to a
    /// sane `[0.001, 0.25]` band).
    pub fn new(alpha: f64) -> Self {
        let alpha = alpha.clamp(0.001, 0.25);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            inv_ln_gamma: 1.0 / gamma.ln(),
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            collapsed: 0,
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of inserted values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of inserted values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest inserted value, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest inserted value, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of inserted values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Values lost to low-bucket collapsing (0 in healthy operation).
    pub fn collapsed(&self) -> u64 {
        self.collapsed
    }

    /// Number of distinct live buckets (bounded by [`MAX_BUCKETS`]).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Log-bucket key for a positive value.
    fn key_of(&self, v: f64) -> i32 {
        (v.ln() * self.inv_ln_gamma).ceil() as i32
    }

    /// Representative value of bucket `k`: the relative midpoint of
    /// `(gamma^(k-1), gamma^k]`, within `alpha` of everything in it.
    fn value_of(&self, k: i32) -> f64 {
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        2.0 * gamma.powi(k) / (gamma + 1.0)
    }

    /// Insert one value. Non-finite values are ignored; values at or
    /// below [`MIN_POSITIVE`] (durations of zero, empty byte counts)
    /// land in the exact zero bucket.
    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= MIN_POSITIVE {
            self.zero += 1;
            return;
        }
        *self.buckets.entry(self.key_of(v)).or_insert(0) += 1;
        if self.buckets.len() > MAX_BUCKETS {
            self.collapse_lowest();
        }
    }

    /// Fold the lowest bucket into its successor, preserving total
    /// count while shedding one key.
    fn collapse_lowest(&mut self) {
        let Some((&lo, _)) = self.buckets.iter().next() else {
            return;
        };
        let n = self.buckets.remove(&lo).unwrap_or(0);
        if let Some((_, next)) = self.buckets.iter_mut().next() {
            *next += n;
        } else {
            self.zero += n;
        }
        self.collapsed += n;
    }

    /// Merge `other` into `self` by adding bucket counts. Commutative
    /// and associative (up to the bucket bound, which only engages past
    /// [`MAX_BUCKETS`] distinct keys). Both sketches must share the
    /// same `alpha`, otherwise the keys don't line up; mismatches are
    /// reconciled by re-inserting representatives, keeping the merge
    /// total-count-exact at a small accuracy cost.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 && self.alpha != other.alpha {
            // Adopt the other side's geometry wholesale.
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.zero += other.zero;
        self.collapsed += other.collapsed;
        if self.alpha == other.alpha {
            for (&k, &n) in &other.buckets {
                *self.buckets.entry(k).or_insert(0) += n;
            }
        } else {
            for (&k, &n) in &other.buckets {
                let key = self.key_of(other.value_of(k));
                *self.buckets.entry(key).or_insert(0) += n;
            }
        }
        while self.buckets.len() > MAX_BUCKETS {
            self.collapse_lowest();
        }
    }

    /// Nearest-rank quantile estimate, `q` in `[0, 1]`. Within `alpha`
    /// relative error of the exact rank-`⌈qN⌉` order statistic (clamped
    /// into the observed `[min, max]` so the extremes report exactly).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero {
            return 0f64.clamp(self.min, self.max);
        }
        let mut seen = self.zero;
        for (&k, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return self.value_of(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Reset to empty, keeping the configured accuracy.
    pub fn clear(&mut self) {
        *self = Self::new(self.alpha);
    }

    /// Immutable, serialisable copy of the current state.
    pub fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot {
            alpha: self.alpha,
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            zero: self.zero,
            collapsed: self.collapsed,
            buckets: self.buckets.iter().map(|(&k, &n)| (k, n)).collect(),
        }
    }
}

/// An immutable copy of a [`QuantileSketch`], with sparse buckets in
/// key order. Serialisable (buckets as `(key, count)` pairs) so it can
/// ride in snapshots and postmortem bundles.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SketchSnapshot {
    /// Relative accuracy the sketch was built with.
    pub alpha: f64,
    /// Number of inserted values.
    pub count: u64,
    /// Sum of inserted values.
    pub sum: f64,
    /// Smallest inserted value (0.0 when empty).
    pub min: f64,
    /// Largest inserted value (0.0 when empty).
    pub max: f64,
    /// Count of values in the exact zero bucket.
    pub zero: u64,
    /// Values folded by the bucket bound.
    pub collapsed: u64,
    /// Sparse `(log-bucket key, count)` pairs, key-sorted.
    pub buckets: Vec<(i32, u64)>,
}

impl SketchSnapshot {
    /// Nearest-rank quantile estimate — same semantics as
    /// [`QuantileSketch::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let alpha = if self.alpha > 0.0 {
            self.alpha
        } else {
            DEFAULT_ALPHA
        };
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero {
            return 0f64.clamp(self.min, self.max);
        }
        let mut seen = self.zero;
        for &(k, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let v = 2.0 * gamma.powi(k) / (gamma + 1.0);
                return v.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of inserted values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The contents that accumulated since `earlier` was taken (both
    /// snapshots from the same, grow-only sketch). Min/max cannot be
    /// un-merged, so the later values are kept.
    pub fn since(&self, earlier: &SketchSnapshot) -> SketchSnapshot {
        let old: BTreeMap<i32, u64> = earlier.buckets.iter().copied().collect();
        let buckets: Vec<(i32, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(k, n)| {
                let d = n.saturating_sub(old.get(&k).copied().unwrap_or(0));
                (d > 0).then_some((k, d))
            })
            .collect();
        SketchSnapshot {
            alpha: self.alpha,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
            min: self.min,
            max: self.max,
            zero: self.zero.saturating_sub(earlier.zero),
            collapsed: self.collapsed.saturating_sub(earlier.collapsed),
            buckets,
        }
    }
}

/// The registry-level sketch instrument: a current-round sketch and a
/// cumulative one behind a single lock. Recording is low-frequency
/// (per client per round, never per iteration), so a mutex is cheap
/// relative to the work between records.
pub struct Sketch {
    inner: Mutex<SketchPair>,
}

struct SketchPair {
    round: QuantileSketch,
    total: QuantileSketch,
}

impl Default for Sketch {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA)
    }
}

impl Sketch {
    /// An empty instrument with relative accuracy `alpha`.
    pub fn new(alpha: f64) -> Self {
        Self {
            inner: Mutex::new(SketchPair {
                round: QuantileSketch::new(alpha),
                total: QuantileSketch::new(alpha),
            }),
        }
    }

    /// Record one value into the current round.
    pub fn record(&self, v: f64) {
        self.inner.lock().round.insert(v);
    }

    /// Fold the current round into the cumulative sketch, reset the
    /// round, and return the folded round's snapshot (what the health
    /// engine consumes at round boundaries).
    pub fn fold_round(&self) -> SketchSnapshot {
        let mut g = self.inner.lock();
        let snap = g.round.snapshot();
        let alpha = g.total.alpha();
        let round = std::mem::replace(&mut g.round, QuantileSketch::new(alpha));
        g.total.merge(&round);
        snap
    }

    /// Snapshot of everything recorded so far: the cumulative sketch
    /// merged with the (not yet folded) current round.
    pub fn snapshot(&self) -> SketchSnapshot {
        let g = self.inner.lock();
        let mut all = g.total.clone();
        all.merge(&g.round);
        all.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_reports_zero() {
        let s = QuantileSketch::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut s = QuantileSketch::new(0.01);
        let mut vals: Vec<f64> = (1..=10_000).map(|i| (i as f64) * 17.3).collect();
        for &v in &vals {
            s.insert(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&vals, q);
            let est = s.quantile(q);
            assert!(
                (est - exact).abs() <= 0.01 * exact + 1e-9,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zero_and_negative_values_hit_zero_bucket() {
        let mut s = QuantileSketch::default();
        for v in [0.0, -5.0, 0.0, 1000.0] {
            s.insert(v);
        }
        assert_eq!(s.count(), 4);
        // Three of four values are non-positive: p50 is the zero bucket.
        assert!(s.quantile(0.5) <= 0.0);
        assert!((s.quantile(1.0) - 1000.0).abs() / 1000.0 < 0.011);
        assert_eq!(s.min(), -5.0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut all = QuantileSketch::new(0.02);
        for i in 0..500u64 {
            let v = (i as f64 + 1.0) * 3.0;
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
            all.insert(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.snapshot().buckets, all.snapshot().buckets);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn bucket_bound_collapses_low_tail_only() {
        let mut s = QuantileSketch::new(0.001); // tiny alpha -> many buckets
                                                // Span ~17 orders of magnitude to overflow the bucket cap.
        let mut i = 0u64;
        while s.collapsed() == 0 && i < 3_000_000 {
            let v = 1e-6 * 1.02f64.powi((i % 2200) as i32);
            s.insert(v);
            i += 1;
        }
        assert!(s.collapsed() > 0, "cap never engaged");
        assert!(s.bucket_count() <= MAX_BUCKETS);
        // The high quantiles stay ordered and within the observed range.
        let p99 = s.quantile(0.99);
        assert!(p99 <= s.max() && p99 >= s.quantile(0.5));
    }

    #[test]
    fn snapshot_since_isolates_interval() {
        let mut s = QuantileSketch::default();
        s.insert(10.0);
        s.insert(20.0);
        let early = s.snapshot();
        s.insert(30.0);
        let diff = s.snapshot().since(&early);
        assert_eq!(diff.count, 1);
        assert!((diff.sum - 30.0).abs() < 1e-9);
        let none = s.snapshot().since(&s.snapshot());
        assert_eq!(none.count, 0);
        assert!(none.buckets.is_empty());
    }

    #[test]
    fn snapshot_roundtrips_and_answers_quantiles() {
        let mut s = QuantileSketch::default();
        for i in 1..=1000 {
            s.insert(i as f64);
        }
        let snap = s.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: SketchSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        for q in [0.25, 0.5, 0.9] {
            assert_eq!(back.quantile(q), s.quantile(q));
        }
    }

    #[test]
    fn instrument_folds_rounds_into_total() {
        let s = Sketch::default();
        s.record(10.0);
        s.record(20.0);
        let r0 = s.fold_round();
        assert_eq!(r0.count, 2);
        s.record(30.0);
        let r1 = s.fold_round();
        assert_eq!(r1.count, 1);
        let all = s.snapshot();
        assert_eq!(all.count, 3);
        assert!((all.sum - 60.0).abs() < 1e-9);
        // An empty fold is harmless.
        assert_eq!(s.fold_round().count, 0);
        assert_eq!(s.snapshot().count, 3);
    }
}
