//! Hierarchical spans and phase timers.
//!
//! Spans form a per-thread stack (`run → task → round → client →
//! phase`); each completed span emits a [`SpanEnd`](crate::event::SpanEnd)
//! event carrying its slash-joined path and also records its duration
//! into the `span.<name>_ns` histogram. Worker threads spawned mid-run
//! inherit the parent's path via [`inherit_path`], which is what keeps
//! paths correct under parallel client execution.
//!
//! All constructors return inert guards when observability is disabled:
//! no clock read, no allocation.

use std::cell::RefCell;
use std::time::Instant;

use crate::event::{Event, SpanEnd, SpanPerf};
use crate::ring::RingData;

thread_local! {
    static SPAN_PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The current thread's span path, slash-joined (empty if no spans are
/// open). Capture this before spawning workers and pass it to
/// [`inherit_path`] inside them.
pub fn current_path() -> String {
    SPAN_PATH.with(|p| p.borrow().join("/"))
}

/// Thread-local totals captured when a span opens; diffed on close to
/// attribute kernel work and allocations to the span.
struct SpanStart {
    t: Instant,
    flops: u64,
    bytes: u64,
    allocs: u64,
    alloc_bytes: u64,
}

/// RAII guard for an open span. Closing (dropping) pops the span and
/// emits its timing.
#[must_use = "dropping a SpanGuard immediately records a zero-length span; bind it to a variable"]
pub struct SpanGuard {
    start: Option<SpanStart>,
}

impl SpanGuard {
    /// An inert guard that records nothing on drop. Used by
    /// [`obs_span!`](crate::obs_span) to skip name formatting entirely
    /// when observability is disabled.
    pub fn inert() -> Self {
        Self { start: None }
    }
}

/// Open a span named `name` under the current thread's span stack.
pub fn span(name: &str) -> SpanGuard {
    if !crate::is_enabled() {
        return SpanGuard { start: None };
    }
    let path = SPAN_PATH.with(|p| {
        let mut p = p.borrow_mut();
        p.push(name.to_string());
        crate::ring::ring_enabled().then(|| p.join("/"))
    });
    if let Some(path) = path {
        crate::ring::record(RingData::Begin { path });
    }
    let (flops, bytes) = crate::perf::thread_totals();
    let (allocs, alloc_bytes) = crate::alloc::thread_totals();
    SpanGuard {
        start: Some(SpanStart {
            t: Instant::now(),
            flops,
            bytes,
            allocs,
            alloc_bytes,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let dur_ns = start.t.elapsed().as_nanos() as u64;
        let (flops, bytes) = crate::perf::thread_totals();
        let (allocs, alloc_bytes) = crate::alloc::thread_totals();
        let perf = SpanPerf {
            flops: flops.wrapping_sub(start.flops),
            bytes: bytes.wrapping_sub(start.bytes),
            allocs: allocs.wrapping_sub(start.allocs),
            alloc_bytes: alloc_bytes.wrapping_sub(start.alloc_bytes),
        };
        let (path, name) = SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            let path = p.join("/");
            let name = p.pop().unwrap_or_default();
            (path, name)
        });
        // Registry only: the SpanEnd event below already carries the
        // duration, so no separate sample event is emitted.
        crate::record_in_registry(&format!("span.{name}_ns"), dur_ns);
        if crate::ring::ring_enabled() {
            crate::ring::record(RingData::End {
                path: path.clone(),
                dur_ns,
            });
        }
        crate::dispatch(&Event::Span(SpanEnd {
            path,
            dur_ns,
            thread: format!("{:?}", std::thread::current().id()),
            perf: (!perf.is_zero()).then_some(perf),
        }));
    }
}

/// RAII guard restoring a worker thread's previous (usually empty) span
/// path on drop.
#[must_use = "dropping a PathGuard immediately reverts the inherited span path; bind it to a variable"]
pub struct PathGuard {
    saved: Option<Vec<String>>,
}

/// Adopt `path` (a [`current_path`] capture from the parent thread) as
/// this thread's span-stack root, so spans opened here nest correctly
/// in the run hierarchy.
pub fn inherit_path(path: &str) -> PathGuard {
    if !crate::is_enabled() {
        return PathGuard { saved: None };
    }
    let segments: Vec<String> = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let saved = SPAN_PATH.with(|p| std::mem::replace(&mut *p.borrow_mut(), segments));
    PathGuard { saved: Some(saved) }
}

impl Drop for PathGuard {
    fn drop(&mut self) {
        if let Some(saved) = self.saved.take() {
            SPAN_PATH.with(|p| *p.borrow_mut() = saved);
        }
    }
}

/// RAII phase timer: on drop, records the elapsed nanoseconds into the
/// named histogram (and emits a sample event to the JSONL sink).
#[must_use = "dropping a TimerGuard immediately records a zero-length phase; bind it to a variable"]
pub struct TimerGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Start timing the phase metric `name` (e.g. `qp.solve_ns`).
pub fn timer(name: &'static str) -> TimerGuard {
    let start = crate::is_enabled().then(Instant::now);
    TimerGuard { name, start }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        crate::record(self.name, start.elapsed().as_nanos() as u64);
    }
}
