//! Scoped heap-allocation tracking.
//!
//! [`TrackingAllocator`] wraps the system allocator and is installed as
//! the `#[global_allocator]` of every binary that links this crate. It
//! is **off by default**: each allocator call pays exactly one relaxed
//! atomic load and a predictable branch — nothing else — until tracking
//! is switched on with `FEDKNOW_PROF_ALLOC=1` (read by
//! [`init_from_env`](crate::init_from_env)) or [`set_tracking`].
//!
//! When on, every allocation bumps
//!
//! * global totals (`alloc.count`, `alloc.bytes`, live bytes and the
//!   high-water mark `alloc.peak_bytes`, mirrored into the registry at
//!   flush time), and
//! * per-thread running totals, which span guards diff to attribute
//!   allocation counts to span paths (see
//!   [`SpanPerf`](crate::event::SpanPerf)) — the per-call-site
//!   inventory the workspace-reuse optimisation work burns down.
//!
//! The accounting path must never allocate (it runs inside `alloc`):
//! it touches only atomics and `const`-initialised thread-locals, and
//! uses `try_with` so allocations during thread teardown (after TLS
//! destruction) stay safe.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};

/// Environment variable enabling allocation tracking (`1`/any non-`0`).
pub const ENV_PROF_ALLOC: &str = "FEDKNOW_PROF_ALLOC";

static TRACKING: AtomicBool = AtomicBool::new(false);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Signed: deallocations of blocks allocated before tracking was
/// enabled would otherwise underflow.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Whether allocation tracking is currently on.
#[inline]
pub fn tracking_enabled() -> bool {
    TRACKING.load(Relaxed)
}

/// Switch allocation tracking on or off at runtime (used by the
/// overhead harness and tests; normal runs go through
/// [`init_from_env`](crate::init_from_env)).
pub fn set_tracking(on: bool) {
    TRACKING.store(on, Relaxed);
}

/// Enable tracking if [`ENV_PROF_ALLOC`] is set to anything but `0` or
/// the empty string. Returns whether tracking is on afterwards.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var(ENV_PROF_ALLOC) {
        if !v.is_empty() && v != "0" {
            set_tracking(true);
        }
    }
    tracking_enabled()
}

/// A point-in-time copy of the global allocation totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocations observed while tracking was on.
    pub count: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
    /// Net live bytes (allocated − freed while tracking; can dip
    /// negative transiently, clamped to 0 here).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
}

/// Current global allocation totals.
pub fn stats() -> AllocStats {
    AllocStats {
        count: TOTAL_ALLOCS.load(Relaxed),
        bytes: TOTAL_BYTES.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed).max(0) as u64,
        peak_bytes: PEAK_BYTES.load(Relaxed),
    }
}

/// This thread's running `(allocs, bytes)` totals; span guards diff two
/// reads to attribute allocations to a span.
pub fn thread_totals() -> (u64, u64) {
    (TL_ALLOCS.with(Cell::get), TL_BYTES.with(Cell::get))
}

/// Mirror the global totals into the metrics registry (`alloc.count`,
/// `alloc.bytes` counters; `alloc.peak_bytes`, `alloc.live_bytes`
/// gauges) so snapshots, reports and the Prometheus endpoint see them.
/// Called from the flush path; cheap no-op when nothing was tracked.
pub(crate) fn sync_registry() {
    if !crate::is_enabled() {
        return;
    }
    let s = stats();
    if s.count == 0 {
        return;
    }
    let reg = &crate::state().registry;
    for (name, total) in [("alloc.count", s.count), ("alloc.bytes", s.bytes)] {
        let c = reg.counter(name);
        let cur = c.get();
        if total > cur {
            c.add(total - cur);
        }
    }
    reg.set_gauge("alloc.peak_bytes", s.peak_bytes as f64);
    reg.set_gauge("alloc.live_bytes", s.live_bytes as f64);
}

#[inline]
fn note_alloc(size: usize) {
    let size = size as u64;
    TOTAL_ALLOCS.fetch_add(1, Relaxed);
    TOTAL_BYTES.fetch_add(size, Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Relaxed) + size as i64;
    if live > 0 {
        PEAK_BYTES.fetch_max(live as u64, Relaxed);
    }
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = TL_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
}

#[inline]
fn note_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as i64, Relaxed);
}

/// The wrapper allocator. Install with
/// `#[global_allocator] static A: TrackingAllocator = TrackingAllocator;`
/// (this crate already does, for every dependent binary).
pub struct TrackingAllocator;

// SAFETY: defers all allocation to `System`; the bookkeeping on the
// side touches only atomics and const-initialised thread-locals, so it
// neither allocates nor unwinds.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if tracking_enabled() && !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if tracking_enabled() && !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        if tracking_enabled() {
            note_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if tracking_enabled() && !p.is_null() {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracking_counts_allocations_and_peak() {
        // Off: a fresh allocation leaves the totals alone.
        set_tracking(false);
        let before = stats();
        let (ta0, _) = thread_totals();
        std::hint::black_box(vec![0u8; 4096]);
        assert_eq!(stats().count, before.count);
        assert_eq!(thread_totals().0, ta0);

        // On: totals, thread totals and the peak all move.
        set_tracking(true);
        let before = stats();
        let (ta1, tb1) = thread_totals();
        let v = std::hint::black_box(vec![7u8; 8192]);
        let after = stats();
        assert!(after.count > before.count);
        assert!(after.bytes >= before.bytes + 8192);
        assert!(after.peak_bytes >= 8192);
        let (ta2, tb2) = thread_totals();
        assert!(ta2 > ta1);
        assert!(tb2 - tb1 >= 8192);
        drop(v);
        set_tracking(false);
    }
}
