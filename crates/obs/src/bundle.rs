//! Postmortem bundles: one-file snapshots of everything the
//! observability layer knows at the moment something went wrong.
//!
//! A bundle is written by [`crate::dump_now`] (or the throttled
//! automatic triggers: the panic hook, strict verify violations, and
//! injected crash/quarantine faults) into the directory named by
//! `FEDKNOW_TRACE_DIR`. It contains:
//!
//! * the trigger reason and ambient round index,
//! * run context registered via [`crate::set_context`] (seed, sim
//!   config, method name),
//! * a dump of the metrics registry (counters, gauges, histogram
//!   summaries, series),
//! * every thread's drained flight-recorder ring (see [`crate::ring`]).
//!
//! Alongside the JSON bundle a Prometheus text snapshot
//! (`<stem>.prom`) is written and the JSONL sink is flushed, so a
//! crashing run never loses buffered events. Bundles convert to
//! Chrome/Perfetto timelines with the `obs_trace` CLI (see
//! [`crate::trace`]).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

use crate::registry::MetricsSnapshot;
use crate::ring::{self, RingRecord};

/// Environment variable naming the directory postmortem bundles are
/// written to. Setting it enables observability (and the recorder) on
/// its own.
pub const ENV_TRACE_DIR: &str = "FEDKNOW_TRACE_DIR";

/// Bundle schema version.
pub const BUNDLE_VERSION: u32 = 1;

/// Cap on automatic dumps per distinct trigger reason (explicit
/// [`crate::dump_now`] calls are not throttled). Keeps a chaos run
/// that crashes a client every round from spraying hundreds of
/// near-identical bundles.
const MAX_AUTO_DUMPS_PER_REASON: u32 = 2;

/// One `key = value` context entry (seed, config, method, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextEntry {
    /// Context key.
    pub key: String,
    /// Context value (free-form; configs are embedded as JSON text).
    pub value: String,
}

/// One thread's drained ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadTrack {
    /// Thread label (`ThreadId(..)` debug form, as in JSONL events).
    pub thread: String,
    /// Records lost to the ring bound before this dump.
    pub dropped: u64,
    /// Held records, oldest first.
    pub events: Vec<RingRecord>,
}

/// A counter's value at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterDump {
    /// Counter name.
    pub name: String,
    /// Total.
    pub value: u64,
}

/// A gauge's value at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeDump {
    /// Gauge name.
    pub name: String,
    /// Last-set value.
    pub value: f64,
}

/// A histogram summary at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistDump {
    /// Histogram name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Median estimate.
    pub p50: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// A series' points at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesDump {
    /// Series name.
    pub name: String,
    /// `(index, value)` points in append order.
    pub points: Vec<(u64, f64)>,
}

/// A quantile-sketch summary at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchDump {
    /// Sketch name.
    pub name: String,
    /// Values folded in.
    pub count: u64,
    /// Their sum.
    pub sum: f64,
    /// Median estimate.
    pub p50: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Largest value.
    pub max: f64,
}

/// One cohorted client metric at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortDump {
    /// Metric name.
    pub name: String,
    /// Per-cohort stats (with exemplars), index-sorted.
    pub cohorts: crate::cohort::CohortSnapshot,
}

/// A serialisable dump of the metrics registry. (The live
/// [`MetricsSnapshot`] is map-based and stays the programmatic API;
/// this flat form is what lands in the bundle JSON.)
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsDump {
    /// All counters.
    pub counters: Vec<CounterDump>,
    /// All gauges.
    pub gauges: Vec<GaugeDump>,
    /// All histogram summaries.
    pub hists: Vec<HistDump>,
    /// All series.
    pub series: Vec<SeriesDump>,
    /// All quantile-sketch summaries (absent in pre-sketch bundles).
    pub sketches: Option<Vec<SketchDump>>,
    /// All cohorted client metrics (absent in pre-sketch bundles).
    pub cohorts: Option<Vec<CohortDump>>,
}

impl MetricsDump {
    /// Flatten a registry snapshot.
    pub fn from_snapshot(s: &MetricsSnapshot) -> Self {
        Self {
            counters: s
                .counters
                .iter()
                .map(|(name, &value)| CounterDump {
                    name: name.clone(),
                    value,
                })
                .collect(),
            gauges: s
                .gauges
                .iter()
                .map(|(name, &value)| GaugeDump {
                    name: name.clone(),
                    value,
                })
                .collect(),
            hists: s
                .hists
                .iter()
                .map(|(name, h)| HistDump {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.quantile(0.5),
                    p99: h.quantile(0.99),
                    max: h.max(),
                })
                .collect(),
            series: s
                .series
                .iter()
                .map(|(name, points)| SeriesDump {
                    name: name.clone(),
                    points: points.clone(),
                })
                .collect(),
            sketches: Some(
                s.sketches
                    .iter()
                    .map(|(name, sk)| SketchDump {
                        name: name.clone(),
                        count: sk.count,
                        sum: sk.sum,
                        p50: sk.quantile(0.5),
                        p99: sk.quantile(0.99),
                        max: sk.max,
                    })
                    .collect(),
            ),
            cohorts: Some(
                s.cohorts
                    .iter()
                    .map(|(name, cs)| CohortDump {
                        name: name.clone(),
                        cohorts: cs.clone(),
                    })
                    .collect(),
            ),
        }
    }
}

/// The black box's one-file output: everything known at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PostmortemBundle {
    /// Schema version ([`BUNDLE_VERSION`]).
    pub version: u32,
    /// Why the dump fired (`panic`, `verify_violation`,
    /// `fault_crash`, or a caller-supplied reason).
    pub reason: String,
    /// Ambient global round index at dump time.
    pub round: u64,
    /// Registered run context (seed, config, method).
    pub context: Vec<ContextEntry>,
    /// Metrics registry dump.
    pub metrics: MetricsDump,
    /// Streaming health engine state at dump time (absent in
    /// pre-health bundles, or when no rounds were observed).
    pub health: Option<crate::health::HealthSnapshot>,
    /// OS process id of the dumping process (absent in pre-tracing
    /// bundles). The multi-process trace merger uses it to label and
    /// separate per-process timelines.
    pub pid: Option<u32>,
    /// One drained ring per recording thread.
    pub tracks: Vec<ThreadTrack>,
}

/// Poison-tolerant lock: dumps run inside the panic hook.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static CONTEXT: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static AUTO_DUMPS: Mutex<Vec<(String, u32)>> = Mutex::new(Vec::new());

/// Register (or overwrite) a run-context entry embedded in every
/// later bundle. The simulation registers its seed, serialised config
/// and method name here.
pub fn set_context(key: &str, value: &str) {
    let mut ctx = lock(&CONTEXT);
    match ctx.iter_mut().find(|(k, _)| k == key) {
        Some(entry) => entry.1 = value.to_string(),
        None => ctx.push((key.to_string(), value.to_string())),
    }
}

/// The currently registered context entries.
pub fn context_entries() -> Vec<ContextEntry> {
    lock(&CONTEXT)
        .iter()
        .map(|(k, v)| ContextEntry {
            key: k.clone(),
            value: v.clone(),
        })
        .collect()
}

/// The configured bundle directory, if `FEDKNOW_TRACE_DIR` is set.
pub fn trace_dir() -> Option<PathBuf> {
    std::env::var_os(ENV_TRACE_DIR).map(PathBuf::from)
}

/// Assemble a bundle from the current process state without writing
/// it anywhere.
pub fn collect_bundle(reason: &str) -> PostmortemBundle {
    let metrics = crate::snapshot()
        .as_ref()
        .map(MetricsDump::from_snapshot)
        .unwrap_or_default();
    let tracks = ring::drain_all()
        .into_iter()
        .map(|(thread, dropped, events)| ThreadTrack {
            thread,
            dropped,
            events,
        })
        .collect();
    PostmortemBundle {
        version: BUNDLE_VERSION,
        reason: reason.to_string(),
        round: crate::round_index(),
        context: context_entries(),
        metrics,
        health: crate::health_snapshot().filter(|h| h.rounds > 0),
        pid: Some(std::process::id()),
        tracks,
    }
}

fn sanitize_reason(reason: &str) -> String {
    reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Write a postmortem bundle for `reason` to `FEDKNOW_TRACE_DIR`,
/// flushing the JSONL sink and writing a Prometheus snapshot
/// alongside. Returns the bundle path, or `None` when no trace
/// directory is configured. Never panics — a failing dump must not
/// mask the failure that triggered it (I/O errors go to stderr).
pub fn dump_now(reason: &str) -> Option<PathBuf> {
    let dir = trace_dir()?;
    // A crashing run must keep its streamed events too.
    crate::flush();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "fedknow-obs: cannot create {ENV_TRACE_DIR}={}: {e}",
            dir.display()
        );
        return None;
    }
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let stem = format!(
        "bundle-{}-p{}-{seq}",
        sanitize_reason(reason),
        std::process::id()
    );
    let bundle = collect_bundle(reason);
    let path = dir.join(format!("{stem}.json"));
    match serde_json::to_string(&bundle) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("fedknow-obs: cannot write {}: {e}", path.display());
                return None;
            }
        }
        Err(e) => {
            eprintln!("fedknow-obs: cannot serialise bundle: {e}");
            return None;
        }
    }
    if let Err(e) = crate::prom::write_prometheus_file(dir.join(format!("{stem}.prom"))) {
        eprintln!("fedknow-obs: cannot write Prometheus snapshot: {e}");
    }
    eprintln!(
        "fedknow-obs: postmortem bundle ({reason}) -> {}",
        path.display()
    );
    Some(path)
}

/// Throttled automatic dump: at most [`MAX_AUTO_DUMPS_PER_REASON`]
/// bundles per distinct reason per process, so fault-heavy chaos runs
/// keep the first occurrences without flooding the directory. Cheap
/// no-op when `FEDKNOW_TRACE_DIR` is unset.
pub fn dump_trigger(reason: &str) -> Option<PathBuf> {
    trace_dir()?;
    {
        let mut counts = lock(&AUTO_DUMPS);
        match counts.iter_mut().find(|(r, _)| r == reason) {
            Some((_, n)) if *n >= MAX_AUTO_DUMPS_PER_REASON => return None,
            Some((_, n)) => *n += 1,
            None => counts.push((reason.to_string(), 1)),
        }
    }
    dump_now(reason)
}

/// Install the crash-time flush hook (idempotent): on panic, a note is
/// recorded, the JSONL sink is flushed, and — when a trace directory
/// is configured — a `panic` bundle plus Prometheus snapshot are
/// written before the previous hook (the default backtrace printer)
/// runs.
pub(crate) fn install_panic_hook() {
    use std::sync::Once;
    static INSTALLED: Once = Once::new();
    INSTALLED.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            crate::mark(&format!("panic: {info}"));
            crate::flush();
            let _ = dump_trigger("panic");
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingData;

    #[test]
    fn context_overwrites_by_key() {
        set_context("bundle_test.seed", "1");
        set_context("bundle_test.seed", "2");
        let hits: Vec<ContextEntry> = context_entries()
            .into_iter()
            .filter(|e| e.key == "bundle_test.seed")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].value, "2");
    }

    #[test]
    fn bundle_roundtrips_through_json() {
        let b = PostmortemBundle {
            version: BUNDLE_VERSION,
            reason: "unit".to_string(),
            round: 7,
            context: vec![ContextEntry {
                key: "seed".to_string(),
                value: "42".to_string(),
            }],
            metrics: MetricsDump {
                counters: vec![CounterDump {
                    name: "fl.crashes".to_string(),
                    value: 3,
                }],
                gauges: vec![],
                hists: vec![],
                series: vec![SeriesDump {
                    name: "fl.participation".to_string(),
                    points: vec![(0, 1.0), (1, 0.8)],
                }],
                sketches: Some(vec![SketchDump {
                    name: "client.compute_s".to_string(),
                    count: 10,
                    sum: 15.0,
                    p50: 1.5,
                    p99: 3.0,
                    max: 3.0,
                }]),
                cohorts: Some(vec![CohortDump {
                    name: "client.compute_s".to_string(),
                    cohorts: crate::cohort::CohortSnapshot {
                        cohorts: vec![crate::cohort::CohortStat {
                            cohort: 0,
                            count: 2,
                            sum: 3.0,
                            min: 1.0,
                            max: 2.0,
                            exemplars: vec![(0, 1.0), (64, 2.0)],
                        }],
                    },
                }]),
            },
            health: {
                let mut e = crate::health::HealthEngine::new();
                e.observe_round(&crate::health::RoundObservation {
                    round: 7,
                    expected: 10,
                    completed: 10,
                    round_seconds: 1.0,
                    ..Default::default()
                });
                Some(e.snapshot())
            },
            pid: Some(4242),
            tracks: vec![ThreadTrack {
                thread: "ThreadId(1)".to_string(),
                dropped: 0,
                events: vec![RingRecord {
                    ts_ns: 5,
                    round: 7,
                    data: RingData::Note {
                        note: "hello".to_string(),
                    },
                }],
            }],
        };
        let json = serde_json::to_string_pretty(&b).unwrap();
        let back: PostmortemBundle = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn pre_sketch_bundles_still_parse() {
        // Schema-v1 bundles written before sketches/cohorts/health
        // existed must keep loading (obs_trace reads old dumps).
        let json = r#"{"version":1,"reason":"old","round":3,"context":[],
            "metrics":{"counters":[],"gauges":[],"hists":[],"series":[]},
            "tracks":[]}"#;
        let b: PostmortemBundle = serde_json::from_str(json).unwrap();
        assert_eq!(b.round, 3);
        assert!(b.metrics.sketches.is_none());
        assert!(b.metrics.cohorts.is_none());
        assert!(b.health.is_none());
        assert!(b.pid.is_none());
    }
}
