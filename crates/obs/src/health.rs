//! Streaming health engine: per-round telemetry folded into SLO
//! states in constant memory.
//!
//! Each round the simulation (or the `scale_probe` driver) hands the
//! engine one [`RoundObservation`] — counts of expected/completed
//! clients, stragglers, quarantined uploads, lost uploads, and the
//! round's duration. The engine folds these into exponentially
//! weighted rates plus a quantile sketch of round times; nothing it
//! holds grows with rounds or clients.
//!
//! Seven SLOs are evaluated against fixed threshold rules after every
//! fold:
//!
//! | SLO                     | value                         | warn | critical |
//! |-------------------------|-------------------------------|------|----------|
//! | `straggler_rate`        | EWMA of stragglers/expected   | 0.05 | 0.20     |
//! | `quarantine_rate`       | EWMA of quarantined/expected  | 0.01 | 0.05     |
//! | `upload_loss_rate`      | EWMA of lost/expected         | 0.05 | 0.20     |
//! | `round_p99_ratio`       | round-time p99 / p50          | 4.0  | 10.0     |
//! | `forgetting_drift`      | rise in avg forgetting / task | 0.05 | 0.15     |
//! | `transport.rtt_p99`     | message RTT p99, seconds      | 1.0  | 10.0     |
//! | `transport.queue_depth` | max server inbox depth        | 64   | 512      |
//!
//! The transport pair is fed per message by the actor runtime
//! ([`crate::observe_message_rtt`], [`crate::observe_queue_depth`]) and
//! published as `health.transport.*` gauges at the next round fold.
//!
//! The resulting [`HealthSnapshot`] is exposed through the obs facade
//! ([`crate::health_snapshot`]), mirrored into `health.*` gauges (and
//! from there `/metrics`), and embedded in postmortem bundles.

use serde::{Deserialize, Serialize};

use crate::sketch::QuantileSketch;

/// EWMA smoothing factor for per-round rates (weight of the newest
/// round).
const EWMA_ALPHA: f64 = 0.2;

/// One round's worth of health-relevant telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundObservation {
    /// Global round index.
    pub round: u64,
    /// Clients expected to participate this round.
    pub expected: u64,
    /// Clients whose upload was accepted.
    pub completed: u64,
    /// Clients that ran slower than their nominal time.
    pub stragglers: u64,
    /// Uploads quarantined by aggregation validation.
    pub quarantined: u64,
    /// Uploads lost in flight (after retries).
    pub uploads_lost: u64,
    /// Simulated (or wall) duration of the round, in seconds.
    pub round_seconds: f64,
}

/// SLO severity ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SloState {
    /// Within budget.
    Ok,
    /// Past the warn threshold.
    Warn,
    /// Past the critical threshold.
    Critical,
}

impl SloState {
    /// Numeric encoding for gauges: 0 ok, 1 warn, 2 critical.
    pub fn as_gauge(self) -> f64 {
        match self {
            SloState::Ok => 0.0,
            SloState::Warn => 1.0,
            SloState::Critical => 2.0,
        }
    }
}

/// One SLO's evaluated status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// SLO name (`straggler_rate`, `round_p99_ratio`, …).
    pub name: String,
    /// Current state under the threshold rule.
    pub state: SloState,
    /// The measured value the rule saw.
    pub value: f64,
    /// Warn threshold.
    pub warn: f64,
    /// Critical threshold.
    pub critical: f64,
}

/// The engine's externally visible state.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Rounds folded so far.
    pub rounds: u64,
    /// Round-time p50 over all folded rounds, seconds.
    pub round_p50_seconds: f64,
    /// Round-time p99 over all folded rounds, seconds.
    pub round_p99_seconds: f64,
    /// Every SLO's status, name-sorted.
    pub slos: Vec<SloStatus>,
}

impl HealthSnapshot {
    /// The worst state across SLOs (`Ok` when none evaluated yet).
    pub fn worst(&self) -> SloState {
        self.slos
            .iter()
            .map(|s| s.state)
            .max()
            .unwrap_or(SloState::Ok)
    }

    /// Status of one SLO by name.
    pub fn slo(&self, name: &str) -> Option<&SloStatus> {
        self.slos.iter().find(|s| s.name == name)
    }
}

fn rule(name: &str, value: f64, warn: f64, critical: f64) -> SloStatus {
    let state = if value >= critical {
        SloState::Critical
    } else if value >= warn {
        SloState::Warn
    } else {
        SloState::Ok
    };
    SloStatus {
        name: name.to_string(),
        state,
        value,
        warn,
        critical,
    }
}

/// The constant-memory fold over round observations.
pub struct HealthEngine {
    rounds: u64,
    round_time: QuantileSketch,
    straggler_rate: f64,
    quarantine_rate: f64,
    loss_rate: f64,
    prev_forgetting: Option<f64>,
    forgetting_drift: f64,
    msg_rtt: QuantileSketch,
    queue_depth_max: f64,
}

impl Default for HealthEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthEngine {
    /// A fresh engine.
    pub fn new() -> Self {
        Self {
            rounds: 0,
            round_time: QuantileSketch::default(),
            straggler_rate: 0.0,
            quarantine_rate: 0.0,
            loss_rate: 0.0,
            prev_forgetting: None,
            forgetting_drift: 0.0,
            msg_rtt: QuantileSketch::default(),
            queue_depth_max: 0.0,
        }
    }

    fn ewma(prev: f64, x: f64, first: bool) -> f64 {
        if first {
            x
        } else {
            EWMA_ALPHA * x + (1.0 - EWMA_ALPHA) * prev
        }
    }

    /// Fold one round.
    pub fn observe_round(&mut self, o: &RoundObservation) {
        let denom = o.expected.max(1) as f64;
        let first = self.rounds == 0;
        self.straggler_rate = Self::ewma(self.straggler_rate, o.stragglers as f64 / denom, first);
        self.quarantine_rate =
            Self::ewma(self.quarantine_rate, o.quarantined as f64 / denom, first);
        self.loss_rate = Self::ewma(self.loss_rate, o.uploads_lost as f64 / denom, first);
        self.round_time.insert(o.round_seconds.max(0.0));
        self.rounds += 1;
    }

    /// Fold one wire message's round-trip time (seconds) into the
    /// transport RTT sketch — constant memory however many messages the
    /// run moves.
    pub fn observe_message_rtt(&mut self, rtt_seconds: f64) {
        self.msg_rtt.insert(rtt_seconds.max(0.0));
    }

    /// Fold one observation of the server inbox depth; the SLO tracks
    /// the maximum seen.
    pub fn observe_queue_depth(&mut self, depth: f64) {
        if depth > self.queue_depth_max {
            self.queue_depth_max = depth;
        }
    }

    /// Fold a task boundary's average forgetting; the SLO watches the
    /// rise relative to the previous boundary.
    pub fn observe_forgetting(&mut self, avg_forgetting: f64) {
        if let Some(prev) = self.prev_forgetting {
            self.forgetting_drift = (avg_forgetting - prev).max(0.0);
        }
        self.prev_forgetting = Some(avg_forgetting);
    }

    /// Evaluate every SLO against the current fold.
    pub fn snapshot(&self) -> HealthSnapshot {
        let p50 = self.round_time.quantile(0.5);
        let p99 = self.round_time.quantile(0.99);
        let p99_ratio = if p50 > 0.0 { p99 / p50 } else { 1.0 };
        HealthSnapshot {
            rounds: self.rounds,
            round_p50_seconds: p50,
            round_p99_seconds: p99,
            slos: vec![
                rule("forgetting_drift", self.forgetting_drift, 0.05, 0.15),
                rule("quarantine_rate", self.quarantine_rate, 0.01, 0.05),
                rule("round_p99_ratio", p99_ratio, 4.0, 10.0),
                rule("straggler_rate", self.straggler_rate, 0.05, 0.20),
                rule("transport.queue_depth", self.queue_depth_max, 64.0, 512.0),
                rule("transport.rtt_p99", self.msg_rtt.quantile(0.99), 1.0, 10.0),
                rule("upload_loss_rate", self.loss_rate, 0.05, 0.20),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_round(round: u64) -> RoundObservation {
        RoundObservation {
            round,
            expected: 100,
            completed: 100,
            stragglers: 0,
            quarantined: 0,
            uploads_lost: 0,
            round_seconds: 1.0,
        }
    }

    #[test]
    fn clean_rounds_stay_ok() {
        let mut e = HealthEngine::new();
        for r in 0..50 {
            e.observe_round(&clean_round(r));
        }
        let s = e.snapshot();
        assert_eq!(s.rounds, 50);
        assert_eq!(s.worst(), SloState::Ok);
        assert!((s.round_p50_seconds - 1.0).abs() < 0.02);
    }

    #[test]
    fn sustained_stragglers_escalate_to_critical() {
        let mut e = HealthEngine::new();
        for r in 0..30 {
            let mut o = clean_round(r);
            o.stragglers = 30; // 30% straggling, past critical=20%
            e.observe_round(&o);
        }
        let s = e.snapshot();
        assert_eq!(s.slo("straggler_rate").unwrap().state, SloState::Critical);
        assert_eq!(s.worst(), SloState::Critical);
    }

    #[test]
    fn one_bad_round_only_warns_through_ewma() {
        let mut e = HealthEngine::new();
        for r in 0..20 {
            e.observe_round(&clean_round(r));
        }
        let mut bad = clean_round(20);
        bad.uploads_lost = 50; // one 50% loss round
        e.observe_round(&bad);
        let s = e.snapshot();
        // EWMA folds 0.5 at weight 0.2 -> 0.1: warn, not critical.
        let slo = s.slo("upload_loss_rate").unwrap();
        assert_eq!(slo.state, SloState::Warn, "value {}", slo.value);
    }

    #[test]
    fn tail_blowup_trips_round_time_slo() {
        let mut e = HealthEngine::new();
        for r in 0..95 {
            e.observe_round(&clean_round(r));
        }
        for r in 95..100 {
            let mut slow = clean_round(r);
            slow.round_seconds = 20.0; // slowest 5% at 20x p50
            e.observe_round(&slow);
        }
        let s = e.snapshot();
        let slo = s.slo("round_p99_ratio").unwrap();
        assert_eq!(slo.state, SloState::Critical, "ratio {}", slo.value);
    }

    #[test]
    fn forgetting_drift_watches_rises_only() {
        let mut e = HealthEngine::new();
        e.observe_round(&clean_round(0));
        e.observe_forgetting(0.10);
        assert_eq!(
            e.snapshot().slo("forgetting_drift").unwrap().state,
            SloState::Ok,
            "first observation sets the baseline"
        );
        e.observe_forgetting(0.30);
        assert_eq!(
            e.snapshot().slo("forgetting_drift").unwrap().state,
            SloState::Critical
        );
        e.observe_forgetting(0.05);
        assert_eq!(
            e.snapshot().slo("forgetting_drift").unwrap().state,
            SloState::Ok,
            "improvement clamps drift to zero"
        );
    }

    #[test]
    fn transport_slos_track_rtt_tail_and_queue_peak() {
        let mut e = HealthEngine::new();
        // Idle engine: both transport SLOs exist and are Ok at zero.
        let s = e.snapshot();
        assert_eq!(s.slo("transport.rtt_p99").unwrap().state, SloState::Ok);
        assert_eq!(s.slo("transport.queue_depth").unwrap().state, SloState::Ok);

        // Sub-second RTTs stay Ok; a sustained multi-second tail trips
        // the p99 rule.
        for _ in 0..100 {
            e.observe_message_rtt(0.002);
        }
        assert_eq!(
            e.snapshot().slo("transport.rtt_p99").unwrap().state,
            SloState::Ok
        );
        for _ in 0..100 {
            e.observe_message_rtt(15.0);
        }
        assert_eq!(
            e.snapshot().slo("transport.rtt_p99").unwrap().state,
            SloState::Critical
        );

        // Queue depth holds the maximum, not the latest.
        e.observe_queue_depth(3.0);
        e.observe_queue_depth(100.0);
        e.observe_queue_depth(1.0);
        let slo = e.snapshot();
        let q = slo.slo("transport.queue_depth").unwrap();
        assert_eq!(q.value, 100.0);
        assert_eq!(q.state, SloState::Warn);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut e = HealthEngine::new();
        e.observe_round(&clean_round(0));
        let s = e.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HealthSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.worst(), SloState::Ok);
    }

    #[test]
    fn state_gauge_encoding_is_ordered() {
        assert_eq!(SloState::Ok.as_gauge(), 0.0);
        assert_eq!(SloState::Warn.as_gauge(), 1.0);
        assert_eq!(SloState::Critical.as_gauge(), 2.0);
        assert!(SloState::Ok < SloState::Warn && SloState::Warn < SloState::Critical);
    }
}
