//! The event vocabulary written to sinks (one JSON object per JSONL
//! line). Five event kinds cover the whole instrumentation layer:
//! span completions, counter increments, histogram samples, gauge
//! writes and series points.

use serde::{Deserialize, Serialize};

/// A completed span: a named region of the run hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEnd {
    /// Slash-joined path from the root, e.g. `run/task.0/round.2/client.1`.
    pub path: String,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
    /// Debug-formatted OS thread id, for correlating parallel clients.
    pub thread: String,
    /// Work attributed to this span (kernel FLOPs/bytes, allocations),
    /// present when the profiling layer observed any; `None` in older
    /// traces and when nothing was counted.
    pub perf: Option<SpanPerf>,
}

/// Work attributed to a span: the growth of the opening thread's
/// kernel and allocator totals between span open and close. Inclusive
/// of child spans on the same thread (like `dur_ns`); work done by
/// other threads inside the span is attributed to *their* spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpanPerf {
    /// Floating-point operations performed by instrumented kernels.
    pub flops: u64,
    /// Bytes moved by instrumented kernels (compulsory operand traffic).
    pub bytes: u64,
    /// Heap allocations (0 unless `FEDKNOW_PROF_ALLOC` tracking is on).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl SpanPerf {
    /// Whether every field is zero (nothing to attribute).
    pub fn is_zero(&self) -> bool {
        *self == SpanPerf::default()
    }
}

/// A counter increment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountEvent {
    /// Metric name, e.g. `comm.upload_bytes`.
    pub name: String,
    /// Amount added.
    pub delta: u64,
}

/// A histogram sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleEvent {
    /// Metric name, e.g. `qp.solve_ns`.
    pub name: String,
    /// Observed value.
    pub value: u64,
}

/// A gauge write.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEvent {
    /// Metric name, e.g. `fl.update_divergence`.
    pub name: String,
    /// The new value.
    pub value: f64,
}

/// A round-indexed series point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointEvent {
    /// Series name, e.g. `integrate.rotation`.
    pub name: String,
    /// Round (or task) index the point belongs to.
    pub index: u64,
    /// Observed value.
    pub value: f64,
}

/// Any observability event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A span completed.
    Span(SpanEnd),
    /// A counter was incremented.
    Count(CountEvent),
    /// A histogram value was recorded.
    Sample(SampleEvent),
    /// A gauge was set.
    Gauge(GaugeEvent),
    /// A series point was appended.
    Point(PointEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            Event::Span(SpanEnd {
                path: "run/task.0".into(),
                dur_ns: 1234,
                thread: "ThreadId(1)".into(),
                perf: None,
            }),
            Event::Span(SpanEnd {
                path: "run/task.1".into(),
                dur_ns: 99,
                thread: "ThreadId(1)".into(),
                perf: Some(SpanPerf {
                    flops: 1_000_000,
                    bytes: 4096,
                    allocs: 3,
                    alloc_bytes: 128,
                }),
            }),
            Event::Count(CountEvent {
                name: "comm.upload_bytes".into(),
                delta: 99,
            }),
            Event::Sample(SampleEvent {
                name: "qp.solve_ns".into(),
                value: 777,
            }),
            Event::Gauge(GaugeEvent {
                name: "fl.update_divergence".into(),
                value: 0.125,
            }),
            Event::Point(PointEvent {
                name: "integrate.rotation".into(),
                index: 4,
                value: 0.03125,
            }),
        ];
        for e in &events {
            let line = serde_json::to_string(e).unwrap();
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, e);
        }
    }

    /// Traces written before the profiling layer existed have no `perf`
    /// key on span events; they must keep parsing (as `None`).
    #[test]
    fn span_end_without_perf_field_deserialises_as_none() {
        let line = r#"{"Span":{"path":"run","dur_ns":5,"thread":"t"}}"#;
        let back: Event = serde_json::from_str(line).unwrap();
        assert_eq!(
            back,
            Event::Span(SpanEnd {
                path: "run".into(),
                dur_ns: 5,
                thread: "t".into(),
                perf: None,
            })
        );
    }
}
