//! The cardinality governor: client-keyed telemetry folded into a
//! fixed number of cohorts.
//!
//! Per-client metric names (`span.client.7_ns`, one series point per
//! client per round, …) make telemetry memory O(clients) — exactly what
//! the million-client roadmap forbids. Instead, client-keyed values are
//! hashed into `K` **cohorts** (`FEDKNOW_OBS_COHORTS`, default
//! [`DEFAULT_COHORTS`]): each cohort keeps constant-size aggregates
//! (count/sum/min/max) plus a small reservoir of **exemplars** — real
//! `(client id, value)` pairs sampled uniformly from the cohort's
//! stream — so a hot cohort can still be traced back to concrete
//! clients.
//!
//! Client ids in the simulator are dense integers, so the cohort of
//! client `c` is simply `c % K`: for fleets of up to `K` clients the
//! mapping is the identity (telemetry is exactly as before), and beyond
//! that it is a uniform fold. [`cohort_of`] is the single mapping
//! point, used both for value cohorting here and for span naming in
//! the facade.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Environment variable setting the cohort count `K`.
pub const ENV_COHORTS: &str = "FEDKNOW_OBS_COHORTS";

/// Default cohort count.
pub const DEFAULT_COHORTS: u32 = 64;

/// Exemplars retained per cohort (reservoir size).
pub const EXEMPLARS_PER_COHORT: usize = 4;

/// The configured cohort count: `FEDKNOW_OBS_COHORTS` clamped to
/// `[1, 4096]`, read once per process.
pub fn cohort_count() -> u32 {
    static K: OnceLock<u32> = OnceLock::new();
    *K.get_or_init(|| {
        std::env::var(ENV_COHORTS)
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map(|k| k.clamp(1, 4096))
            .unwrap_or(DEFAULT_COHORTS)
    })
}

/// The cohort a client id folds into.
pub fn cohort_of(client: u64) -> u32 {
    (client % cohort_count() as u64) as u32
}

/// splitmix64 — the deterministic hash driving reservoir replacement.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Constant-size per-cohort aggregate plus its exemplar reservoir.
#[derive(Debug, Default)]
struct SlotInner {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    exemplars: Vec<(u64, f64)>,
}

/// One metric family's cohort aggregates: `K` slots, each O(1) memory.
pub struct CohortSet {
    slots: Vec<Mutex<SlotInner>>,
}

impl Default for CohortSet {
    fn default() -> Self {
        Self::new(cohort_count())
    }
}

impl CohortSet {
    /// A set with `k` cohort slots.
    pub fn new(k: u32) -> Self {
        Self {
            slots: (0..k.max(1))
                .map(|_| Mutex::new(SlotInner::default()))
                .collect(),
        }
    }

    /// Record `value` for `client`, folding into its cohort and giving
    /// the pair a uniform chance at the cohort's exemplar reservoir
    /// (algorithm R, driven by a deterministic hash of the stream
    /// position and the client id — no RNG state to carry).
    pub fn record(&self, client: u64, value: f64) {
        let slot = (client % self.slots.len() as u64) as usize;
        let mut g = self.slots[slot].lock();
        if g.count == 0 {
            g.min = value;
            g.max = value;
        } else {
            g.min = g.min.min(value);
            g.max = g.max.max(value);
        }
        g.count += 1;
        g.sum += value;
        if g.exemplars.len() < EXEMPLARS_PER_COHORT {
            g.exemplars.push((client, value));
        } else {
            let j = (splitmix64(g.count ^ client.rotate_left(32)) % g.count) as usize;
            if j < EXEMPLARS_PER_COHORT {
                g.exemplars[j] = (client, value);
            }
        }
    }

    /// Immutable copy of every non-empty cohort.
    pub fn snapshot(&self) -> CohortSnapshot {
        CohortSnapshot {
            cohorts: self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    let g = s.lock();
                    (g.count > 0).then(|| CohortStat {
                        cohort: i as u32,
                        count: g.count,
                        sum: g.sum,
                        min: g.min,
                        max: g.max,
                        exemplars: g.exemplars.clone(),
                    })
                })
                .collect(),
        }
    }
}

/// One cohort's aggregate at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortStat {
    /// Cohort index in `[0, K)`.
    pub cohort: u32,
    /// Values folded into this cohort.
    pub count: u64,
    /// Their sum.
    pub sum: f64,
    /// Smallest value seen.
    pub min: f64,
    /// Largest value seen.
    pub max: f64,
    /// Reservoir-sampled `(client id, value)` pairs.
    pub exemplars: Vec<(u64, f64)>,
}

impl CohortStat {
    /// Mean value in this cohort.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Immutable copy of a [`CohortSet`]: non-empty cohorts, index-sorted.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CohortSnapshot {
    /// Per-cohort stats (empty cohorts omitted).
    pub cohorts: Vec<CohortStat>,
}

impl CohortSnapshot {
    /// Total count across cohorts.
    pub fn total_count(&self) -> u64 {
        self.cohorts.iter().map(|c| c.count).sum()
    }

    /// The stats that accumulated since `earlier` (same grow-only set).
    /// Exemplars and min/max keep the later snapshot's view.
    pub fn since(&self, earlier: &CohortSnapshot) -> CohortSnapshot {
        CohortSnapshot {
            cohorts: self
                .cohorts
                .iter()
                .filter_map(|c| {
                    let old = earlier.cohorts.iter().find(|o| o.cohort == c.cohort);
                    let (oc, os) = old.map(|o| (o.count, o.sum)).unwrap_or((0, 0.0));
                    let d = c.count.saturating_sub(oc);
                    (d > 0).then(|| CohortStat {
                        cohort: c.cohort,
                        count: d,
                        sum: c.sum - os,
                        min: c.min,
                        max: c.max,
                        exemplars: c.exemplars.clone(),
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_fold_into_bounded_slots() {
        let set = CohortSet::new(8);
        for client in 0..10_000u64 {
            set.record(client, client as f64);
        }
        let snap = set.snapshot();
        assert_eq!(snap.cohorts.len(), 8);
        assert_eq!(snap.total_count(), 10_000);
        for c in &snap.cohorts {
            assert_eq!(c.count, 1250);
            assert!(c.exemplars.len() <= EXEMPLARS_PER_COHORT);
            // Every exemplar really belongs to this cohort and carries
            // its own recorded value.
            for &(client, v) in &c.exemplars {
                assert_eq!(client % 8, c.cohort as u64);
                assert_eq!(v, client as f64);
            }
        }
    }

    #[test]
    fn stats_are_exact_per_cohort() {
        let set = CohortSet::new(4);
        set.record(1, 10.0);
        set.record(5, 30.0); // same cohort as 1
        set.record(2, 7.0);
        let snap = set.snapshot();
        let c1 = snap.cohorts.iter().find(|c| c.cohort == 1).unwrap();
        assert_eq!(c1.count, 2);
        assert_eq!(c1.sum, 40.0);
        assert_eq!(c1.min, 10.0);
        assert_eq!(c1.max, 30.0);
        assert_eq!(c1.mean(), 20.0);
        let c2 = snap.cohorts.iter().find(|c| c.cohort == 2).unwrap();
        assert_eq!(c2.count, 1);
    }

    #[test]
    fn reservoir_is_deterministic() {
        let a = CohortSet::new(2);
        let b = CohortSet::new(2);
        for client in 0..1000u64 {
            a.record(client, 1.0);
            b.record(client, 1.0);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn since_diffs_counts_and_sums() {
        let set = CohortSet::new(2);
        set.record(0, 5.0);
        let early = set.snapshot();
        set.record(0, 7.0);
        set.record(1, 1.0);
        let d = set.snapshot().since(&early);
        let c0 = d.cohorts.iter().find(|c| c.cohort == 0).unwrap();
        assert_eq!(c0.count, 1);
        assert_eq!(c0.sum, 7.0);
        assert!(d.cohorts.iter().any(|c| c.cohort == 1));
        let none = set.snapshot().since(&set.snapshot());
        assert!(none.cohorts.is_empty());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let set = CohortSet::new(3);
        set.record(4, 2.5);
        set.record(2, 1.5);
        let snap = set.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: CohortSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
