//! A minimal stdlib-only HTTP server exposing the live registry as
//! Prometheus text on `GET /metrics`.
//!
//! One background thread accepts loopback connections sequentially —
//! a scrape is a snapshot plus a few kilobytes of formatting, so there
//! is nothing to parallelise — and every response closes its
//! connection. The server thread is detached and lives for the rest of
//! the process (like the JSONL sink); binding is the only fallible
//! step. Gated by `FEDKNOW_OBS_ADDR` via
//! [`init_from_env`](crate::init_from_env).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use crate::prom::prometheus_text;

/// Handle to a running metrics endpoint.
pub struct MetricsServer {
    addr: SocketAddr,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 for ephemeral) and
    /// serve `/metrics` from a detached background thread.
    pub fn serve(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        std::thread::Builder::new()
            .name("fedknow-obs-http".into())
            .spawn(move || {
                // A broken scraper must never take down the run.
                for mut stream in listener.incoming().flatten() {
                    let _ = handle(&mut stream);
                }
            })?;
        Ok(Self { addr })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Serve one request: parse the request line, drain headers, respond.
fn handle(stream: &mut TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line)? > 2 {
        line.clear();
    }
    let (status, content_type, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        let body = prometheus_text(&crate::snapshot().unwrap_or_default());
        ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only /metrics is served here\n".to_string(),
        )
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}
