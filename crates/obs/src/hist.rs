//! Log-bucketed histogram with linear sub-buckets (HDR-style).
//!
//! Values are `u64` (nanoseconds, bytes, iteration counts). Buckets are
//! powers of two split into `2^SUB_BITS` linear sub-buckets, so the
//! representative value of any bucket is within `2^-(SUB_BITS + 1)`
//! relative error (~1.6% at the default `SUB_BITS = 5`) of every value
//! it holds. Recording is lock-free: all cells are relaxed atomics, so
//! concurrent client threads can record without coordination. A
//! snapshot taken while writers are active may tear between cells
//! (sum/count/buckets read at slightly different instants); totals are
//! exact once writers quiesce.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Linear sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` equal sub-buckets.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32

/// Bucket count covering the full u64 range: values below `SUB` get
/// exact unit buckets, and each of the `64 - SUB_BITS` remaining
/// exponents contributes `SUB` sub-buckets.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Bucket index for a value.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // 2^exp <= v
        let sub = (v >> (exp - SUB_BITS)) - SUB; // top SUB_BITS bits below the leading one
        (exp - SUB_BITS + 1) as usize * SUB as usize + sub as usize
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < 2 * SUB {
        i
    } else {
        let exp = i / SUB + SUB_BITS as u64 - 1;
        let sub = i % SUB;
        (SUB + sub) << (exp - SUB_BITS as u64)
    }
}

/// Representative (mid-point) value of a bucket.
fn bucket_mid(i: usize) -> u64 {
    let low = bucket_low(i);
    let width = bucket_low(i + 1).saturating_sub(low).max(1);
    low + (width - 1) / 2
}

/// A thread-safe log-bucketed histogram.
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Copy the current contents into an immutable snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistSnapshot {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets,
        }
    }
}

/// An immutable copy of a [`LogHistogram`]'s state. Buckets are stored
/// sparsely as `(index, count)` pairs in index order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping at u64).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate, `q` in `[0, 1]`. Returns the
    /// representative value of the bucket containing the rank-`⌈qN⌉`
    /// sample — within ~2% relative error of the exact order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Clamp the estimate into the observed range so the
                // extremes report exactly.
                return bucket_mid(i as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The histogram contents that accumulated since `earlier` was
    /// taken (both snapshots must come from the same histogram, which
    /// only ever grows). Min/max cannot be un-merged, so the later
    /// snapshot's values are kept.
    pub fn since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut old: std::collections::BTreeMap<u32, u64> =
            earlier.buckets.iter().copied().collect();
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n - old.remove(&i).unwrap_or(0);
                (d > 0).then_some((i, d))
            })
            .collect();
        HistSnapshot {
            count: self.count - earlier.count,
            sum: self.sum.wrapping_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut candidates: Vec<u64> = vec![u64::MAX];
        for shift in 0..64u32 {
            for off in [0u64, 1, 3] {
                candidates.push((1u64 << shift).saturating_add(off << shift.saturating_sub(3)));
            }
        }
        candidates.sort_unstable();
        let mut last = 0usize;
        for v in candidates {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "index not monotone at {v}");
            last = i;
        }
    }

    #[test]
    fn bucket_low_inverts_index() {
        for i in 0..NUM_BUCKETS - 1 {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "low({i}) = {low} maps back wrong");
            let next = bucket_low(i + 1);
            assert!(next > low, "bucket {i} empty range");
            assert_eq!(bucket_index(next - 1), i, "upper edge of bucket {i}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 5, 17, 31] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 54);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 31);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 31);
    }

    #[test]
    fn quantiles_approximate_large_values() {
        let h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000); // 1k..1M
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50 {p50}");
        let p99 = s.quantile(0.99) as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99 {p99}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// `bucket_index`/`bucket_low` round-trip at power-of-two edges:
        /// for any value straddling `1 << shift` the bucket's low bound
        /// never exceeds the value, the next bucket starts strictly
        /// above it, and feeding a bucket's own low bound back through
        /// `bucket_index` lands in the same bucket.
        #[test]
        fn bucket_round_trip_at_pow2_edges(
            shift in 0u32..64,
            off in 0u64..4,
            sign in proptest::prelude::any::<bool>(),
        ) {
            let edge = 1u64 << shift;
            let v = if sign { edge.saturating_add(off) } else { edge.saturating_sub(off) };
            let i = bucket_index(v);
            proptest::prop_assert!(i < NUM_BUCKETS, "index {} out of range for {}", i, v);
            let low = bucket_low(i);
            proptest::prop_assert!(low <= v, "bucket_low({}) = {} exceeds value {}", i, low, v);
            proptest::prop_assert_eq!(bucket_index(low), i);
            if i + 1 < NUM_BUCKETS {
                proptest::prop_assert!(
                    bucket_low(i + 1) > v,
                    "value {} reaches past its bucket {}", v, i
                );
            }
            // Crossing the edge itself never decreases the index.
            proptest::prop_assert!(
                bucket_index(edge) >= bucket_index(edge.saturating_sub(1)),
                "index drops across edge 1<<{}", shift
            );
        }
    }

    #[test]
    fn since_subtracts() {
        let h = LogHistogram::new();
        h.record(10);
        h.record(1000);
        let early = h.snapshot();
        h.record(10);
        h.record(70);
        let diff = h.snapshot().since(&early);
        assert_eq!(diff.count(), 2);
        assert_eq!(diff.sum(), 80);
        let empty = h.snapshot().since(&h.snapshot());
        assert_eq!(empty.count(), 0);
        assert!(empty.buckets.is_empty());
    }
}
