//! The FedKNOW client — wiring the extractor, restorer and integrator
//! into the federated round protocol (§III-A, Figure 3).

use crate::config::FedKnowConfig;
use crate::extractor::KnowledgeExtractor;
use crate::integrator::GradientIntegrator;
use crate::restorer::GradientRestorer;
use fedknow_data::ClientTask;
use fedknow_fl::{FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_math::SparseVec;
use fedknow_nn::optim::{LrSchedule, Sgd};
use fedknow_obs::HistHandle;
use rand::rngs::StdRng;

/// Jaccard overlap (per-mille) of a freshly extracted knowledge mask
/// against each previously retained task's mask — how much the top-ρ
/// supports of different tasks coincide (Eq. 1 across tasks).
static MASK_JACCARD_PM: HistHandle = HistHandle::new("extract.mask_jaccard_pm");

/// A FedKNOW client.
///
/// Per training iteration it integrates the current gradient with the
/// restored gradients of its signature tasks (forgetting prevention);
/// after each FedAvg aggregation it fine-tunes the received global model
/// with gradients rotated to stay acute with the post-aggregation
/// direction (negative-transfer prevention); after each task it extracts
/// and retains the task's signature knowledge.
pub struct FedKnowClient {
    trainer: LocalTrainer,
    cfg: FedKnowConfig,
    extractor: KnowledgeExtractor,
    restorer: GradientRestorer,
    integrator: GradientIntegrator,
    /// Post-aggregation fine-tune schedule (Theorem 1: O(r^{-1})).
    global_opt: Sgd,
    knowledges: Vec<SparseVec>,
    /// Indices into `knowledges` of the current signature tasks.
    selected: Vec<usize>,
    /// FLOPs spent outside train_iteration (selection, fine-tunes),
    /// charged to the next iteration's stats.
    pending_flops: u64,
}

impl FedKnowClient {
    /// Build a client from the shared model template.
    pub fn new(
        template: &ModelTemplate,
        cfg: FedKnowConfig,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let model = template.instantiate();
        let opt = Sgd::new(
            cfg.local_lr,
            LrSchedule::LinearDecrease {
                decrease: cfg.lr_decrease,
            },
        );
        let global_opt = Sgd::new(cfg.global_lr, LrSchedule::Inverse);
        Self {
            trainer: LocalTrainer::new(model, opt, batch_size, image_shape),
            extractor: KnowledgeExtractor::with_strategy(
                cfg.rho,
                cfg.knowledge_finetune_iters,
                cfg.strategy,
            ),
            restorer: GradientRestorer,
            integrator: GradientIntegrator::new(cfg.margin),
            global_opt,
            cfg,
            knowledges: Vec::new(),
            selected: Vec::new(),
            pending_flops: 0,
        }
    }

    /// Retained signature knowledge, one entry per finished task.
    pub fn knowledges(&self) -> &[SparseVec] {
        &self.knowledges
    }

    /// Currently selected signature-task indices.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }

    /// Borrow the underlying trainer (benchmarks and tests).
    pub fn trainer_mut(&mut self) -> &mut LocalTrainer {
        &mut self.trainer
    }

    /// Re-rank signature tasks on a fresh batch (run at task start and
    /// after every aggregation, so selection tracks the moving model).
    fn reselect(&mut self, rng: &mut StdRng) {
        if self.knowledges.is_empty() || self.trainer.num_samples() == 0 {
            self.selected.clear();
            return;
        }
        let (x, labels) = self.trainer.next_batch(rng);
        self.trainer.compute_grads(&x, &labels);
        let g = self.trainer.model.flat_grads();
        self.selected = self.restorer.select_signature_tasks(
            &mut self.trainer.model,
            &self.knowledges,
            &x,
            &g,
            self.cfg.k,
            self.cfg.metric,
        );
        // Selection restores all m candidates: m × (4/3) iterations of
        // work, plus the probe forward/backward.
        let probe = self.trainer.iteration_flops();
        self.pending_flops += probe + self.knowledges.len() as u64 * probe * 4 / 3;
    }
}

impl FclClient for FedKnowClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
        self.global_opt.reset();
        self.reselect(rng);
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let (x, labels) = self.trainer.next_batch(rng);
        let loss = self.trainer.compute_grads(&x, &labels);
        let g = self.trainer.model.flat_grads();
        let mut flops = self.trainer.iteration_flops() + self.pending_flops;
        self.pending_flops = 0;
        let update = if self.selected.is_empty() {
            g
        } else {
            let restored: Vec<Vec<f32>> = self
                .selected
                .iter()
                .map(|&i| {
                    self.restorer
                        .restore(&mut self.trainer.model, &self.knowledges[i], &x)
                })
                .collect();
            flops += self.selected.len() as u64 * self.trainer.iteration_flops() * 4 / 3;
            self.integrator.integrate(&g, &restored)
        };
        let lr = self.trainer.opt.next_lr() as f32;
        self.trainer.model.apply_update(&update, lr);
        IterationStats {
            loss: loss as f64,
            flops,
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], rng: &mut StdRng) {
        // Keep the pre-aggregation model for the cross-aggregation
        // integration, then adopt the global model.
        let local = self.trainer.model.flat_params();
        self.trainer.model.set_flat_params(global);
        if self.trainer.num_samples() > 0 {
            let epoch = self.trainer.num_samples().div_ceil(self.trainer.batch_size);
            let iters = self
                .cfg
                .post_agg_iters
                .map_or(epoch, |n| n.min(epoch.max(1)));
            for _ in 0..iters {
                let (x, labels) = self.trainer.next_batch(rng);
                // Gradient after aggregation (at the global weights).
                self.trainer.compute_grads(&x, &labels);
                let g_after = self.trainer.model.flat_grads();
                // Gradient before aggregation (at the saved local
                // weights), on the same batch.
                let now = self.trainer.model.flat_params();
                self.trainer.model.set_flat_params(&local);
                self.trainer.compute_grads(&x, &labels);
                let g_before = self.trainer.model.flat_grads();
                self.trainer.model.set_flat_params(&now);
                // Constraints: the post-aggregation gradient (negative-
                // transfer prevention) plus the signature-task gradients
                // (the fine-tune must not undo forgetting prevention).
                let mut constraints = vec![g_after];
                for &i in &self.selected {
                    constraints.push(self.restorer.restore(
                        &mut self.trainer.model,
                        &self.knowledges[i],
                        &x,
                    ));
                }
                self.pending_flops +=
                    self.selected.len() as u64 * self.trainer.iteration_flops() * 4 / 3;
                let update = self.integrator.integrate(&g_before, &constraints);
                let lr = self.global_opt.next_lr() as f32;
                self.trainer.model.apply_update(&update, lr);
                self.pending_flops += 2 * self.trainer.iteration_flops();
            }
        }
        // The model moved: refresh the signature selection.
        self.reselect(rng);
    }

    fn finish_task(&mut self, rng: &mut StdRng) {
        let (knowledge, flops) = self.extractor.extract_and_finetune(&mut self.trainer, rng);
        self.pending_flops += flops;
        if fedknow_obs::is_enabled() && !self.knowledges.is_empty() {
            let mut sum = 0.0f64;
            for prev in &self.knowledges {
                let j = knowledge.jaccard(prev);
                MASK_JACCARD_PM.record((j * 1000.0).round() as u64);
                sum += j;
            }
            // Indexed by the finished task, not the round: the overlap
            // trajectory is a per-task series.
            fedknow_obs::series_at(
                "extract.jaccard_mean",
                self.knowledges.len() as u64,
                sum / self.knowledges.len() as f64,
            );
        }
        self.knowledges.push(knowledge);
        self.selected.clear();
    }

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.trainer.evaluate_task(task)
    }

    fn retained_bytes(&self) -> u64 {
        self.knowledges.iter().map(|k| k.size_bytes() as u64).sum()
    }

    /// At a task boundary the FedKNOW state beyond the flat weights is
    /// the retained knowledge set and the pending-FLOPs debit (`selected`
    /// is cleared by `finish_task`, both optimisers reset at
    /// `start_task`). All of it is folded into the flat stream —
    /// integers as 16-bit limbs so every value survives an f32 (and
    /// JSON) round trip exactly.
    fn checkpoint_params(&mut self) -> Option<Vec<f32>> {
        let weights = self.trainer.model.flat_params();
        let mut buf = Vec::with_capacity(weights.len() + 8);
        push_u32(&mut buf, weights.len() as u32);
        buf.extend_from_slice(&weights);
        push_u64(&mut buf, self.pending_flops);
        push_u32(&mut buf, self.knowledges.len() as u32);
        for k in &self.knowledges {
            push_u32(&mut buf, k.dense_len() as u32);
            push_u32(&mut buf, k.nnz() as u32);
            for &i in k.indices() {
                push_u32(&mut buf, i);
            }
            buf.extend_from_slice(k.values());
        }
        Some(buf)
    }

    fn restore_checkpoint(&mut self, params: &[f32], _rng: &mut StdRng) {
        let mut cur = CkCursor::new(params);
        let n = cur.u32() as usize;
        assert_eq!(
            n,
            self.trainer.model.flat_params().len(),
            "FedKNOW checkpoint was taken on a different architecture"
        );
        let weights = cur.slice(n).to_vec();
        self.trainer.model.set_flat_params(&weights);
        self.pending_flops = cur.u64();
        let tasks = cur.u32() as usize;
        self.knowledges.clear();
        for _ in 0..tasks {
            let dense_len = cur.u32() as usize;
            let nnz = cur.u32() as usize;
            let indices: Vec<u32> = (0..nnz).map(|_| cur.u32()).collect();
            let values = cur.slice(nnz).to_vec();
            self.knowledges
                .push(SparseVec::new(dense_len, indices, values));
        }
        self.selected.clear();
    }

    fn method_name(&self) -> &'static str {
        "fedknow"
    }
}

/// Append a `u32` as two 16-bit limbs, each exactly representable as f32.
fn push_u32(buf: &mut Vec<f32>, v: u32) {
    buf.push((v & 0xFFFF) as f32);
    buf.push((v >> 16) as f32);
}

/// Append a `u64` as four 16-bit limbs.
fn push_u64(buf: &mut Vec<f32>, v: u64) {
    push_u32(buf, (v & 0xFFFF_FFFF) as u32);
    push_u32(buf, (v >> 32) as u32);
}

/// Sequential reader over the flat checkpoint stream.
struct CkCursor<'a> {
    data: &'a [f32],
    pos: usize,
}

impl<'a> CkCursor<'a> {
    fn new(data: &'a [f32]) -> Self {
        Self { data, pos: 0 }
    }

    fn slice(&mut self, n: usize) -> &'a [f32] {
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    fn u32(&mut self) -> u32 {
        let s = self.slice(2);
        (s[0] as u32) | ((s[1] as u32) << 16)
    }

    fn u64(&mut self) -> u64 {
        let lo = self.u32() as u64;
        let hi = self.u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    fn setup(tasks: usize) -> (FedKnowClient, Vec<ClientTask>) {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(tasks);
        let data = generate(&spec, 3);
        let parts = partition(&data, 1, &PartitionConfig::default(), 3);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 7);
        let cfg = FedKnowConfig {
            k: 2,
            knowledge_finetune_iters: 2,
            ..Default::default()
        };
        let client = FedKnowClient::new(&template, cfg, 8, vec![3, 8, 8]);
        (client, parts[0].tasks.clone())
    }

    #[test]
    fn knowledge_accumulates_per_task() {
        let (mut c, tasks) = setup(2);
        let mut rng = seeded(1);
        for t in &tasks {
            c.start_task(t, &mut rng);
            for _ in 0..4 {
                c.train_iteration(&mut rng);
            }
            c.finish_task(&mut rng);
        }
        assert_eq!(c.knowledges().len(), 2);
        let expected = ((c.trainer_mut().model.param_count() as f64) * 0.1).round() as usize;
        assert_eq!(c.knowledges()[0].nnz(), expected);
        assert!(c.retained_bytes() > 0);
    }

    #[test]
    fn second_task_uses_signature_selection() {
        let (mut c, tasks) = setup(2);
        let mut rng = seeded(2);
        c.start_task(&tasks[0], &mut rng);
        assert!(
            c.selected().is_empty(),
            "no knowledge yet on the first task"
        );
        for _ in 0..4 {
            c.train_iteration(&mut rng);
        }
        c.finish_task(&mut rng);
        c.start_task(&tasks[1], &mut rng);
        assert_eq!(c.selected().len(), 1, "one knowledge, k clamps to it");
        let stats = c.train_iteration(&mut rng);
        assert!(stats.flops > 0);
    }

    #[test]
    fn receive_global_adopts_and_fine_tunes() {
        let (mut c, tasks) = setup(1);
        let mut rng = seeded(3);
        c.start_task(&tasks[0], &mut rng);
        for _ in 0..3 {
            c.train_iteration(&mut rng);
        }
        let dim = c.upload().unwrap().len();
        let global = vec![0.01f32; dim];
        c.receive_global(&global, &mut rng);
        let after = c.upload().unwrap();
        // Fine-tuning moved the model off the raw global weights...
        assert_ne!(after, global);
        // ...but it stays near them (a couple of small steps).
        let dist: f32 = after
            .iter()
            .zip(&global)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist < 10.0, "model flew away from global: {dist}");
    }

    #[test]
    fn training_learns_first_task() {
        let (mut c, tasks) = setup(1);
        let mut rng = seeded(4);
        c.start_task(&tasks[0], &mut rng);
        for _ in 0..80 {
            c.train_iteration(&mut rng);
        }
        let acc = c.evaluate(&tasks[0]);
        let chance = 1.0 / tasks[0].classes.len() as f64;
        assert!(acc > 2.0 * chance, "accuracy {acc} vs chance {chance}");
    }

    #[test]
    fn checkpoint_roundtrip_restores_full_state() {
        let (mut c, tasks) = setup(2);
        let mut rng = seeded(6);
        for t in &tasks {
            c.start_task(t, &mut rng);
            for _ in 0..4 {
                c.train_iteration(&mut rng);
            }
            c.finish_task(&mut rng);
        }
        let saved = c.checkpoint_params().unwrap();

        let (mut fresh, _) = setup(2);
        let mut scratch = seeded(99);
        fresh.restore_checkpoint(&saved, &mut scratch);
        assert_eq!(fresh.knowledges(), c.knowledges());
        assert_eq!(fresh.upload(), c.upload());
        for t in &tasks {
            assert_eq!(fresh.evaluate(t), c.evaluate(t));
        }
        // Re-checkpointing reproduces the stream bit-for-bit — the
        // pending-FLOPs debit and every limb survive the round trip.
        assert_eq!(fresh.checkpoint_params().unwrap(), saved);
    }

    #[test]
    #[should_panic(expected = "different architecture")]
    fn checkpoint_rejects_wrong_architecture() {
        let (mut c, _) = setup(1);
        let mut bad = Vec::new();
        push_u32(&mut bad, 3);
        bad.extend_from_slice(&[0.0, 0.0, 0.0]);
        push_u64(&mut bad, 0);
        push_u32(&mut bad, 0);
        c.restore_checkpoint(&bad, &mut seeded(1));
    }

    #[test]
    fn retained_bytes_scale_with_rho() {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(1);
        let data = generate(&spec, 3);
        let parts = partition(&data, 1, &PartitionConfig::default(), 3);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 7);
        let mut sizes = Vec::new();
        for rho in [0.05, 0.10, 0.20] {
            let cfg = FedKnowConfig {
                rho,
                knowledge_finetune_iters: 0,
                ..Default::default()
            };
            let mut c = FedKnowClient::new(&template, cfg, 8, vec![3, 8, 8]);
            let mut rng = seeded(5);
            c.start_task(&parts[0].tasks[0], &mut rng);
            c.train_iteration(&mut rng);
            c.finish_task(&mut rng);
            sizes.push(c.retained_bytes());
        }
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }
}
