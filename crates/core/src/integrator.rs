//! Gradient integrator (§III-D) — a thin, configured wrapper over the
//! dual-QP solver in `fedknow_math::qp`.

use fedknow_math::qp::{integrate_gradient, QpConfig};
use fedknow_math::MathError;

/// Rotates gradients to keep acute angles with constraint gradients
/// (Eqs. 3–5).
#[derive(Debug, Clone)]
pub struct GradientIntegrator {
    qp: QpConfig,
}

impl GradientIntegrator {
    /// New integrator with the given constraint margin.
    pub fn new(margin: f64) -> Self {
        Self {
            qp: QpConfig {
                margin,
                ..Default::default()
            },
        }
    }

    /// Integrate `g` against the signature gradients `constraints`:
    /// returns `g'` minimally rotated so `⟨g_i, g'⟩ ≥ 0` for all `i`.
    ///
    /// Falls back to the un-rotated gradient if the QP fails to converge
    /// (never observed with k ≤ 20, but training must not abort on a
    /// pathological batch).
    pub fn integrate(&self, g: &[f32], constraints: &[Vec<f32>]) -> Vec<f32> {
        let _t = fedknow_obs::timer("qp.solve_ns");
        match integrate_gradient(g, constraints, &self.qp) {
            Ok(r) => {
                if r.already_feasible {
                    fedknow_obs::count("qp.fast_path", 1);
                } else {
                    fedknow_obs::record("qp.iters", r.iterations as u64);
                }
                r.gradient
            }
            Err(MathError::QpNotConverged { .. }) => {
                fedknow_obs::count("qp.fallback", 1);
                g.to_vec()
            }
            Err(e) => panic!("gradient integration failed: {e}"),
        }
    }

    /// The cross-aggregation integration (§III-A): rotate the
    /// pre-aggregation gradient `g_before` to have an acute angle with
    /// the post-aggregation gradient `g_after`, producing the update
    /// that "incorporates global information from other clients, while
    /// avoiding decreasing model accuracy in local data".
    pub fn integrate_across_aggregation(&self, g_before: &[f32], g_after: &[f32]) -> Vec<f32> {
        self.integrate(g_before, std::slice::from_ref(&g_after.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn integration_enforces_acute_angles() {
        let integ = GradientIntegrator::new(0.0);
        let g = vec![1.0, 0.0, 0.0];
        let cons = vec![vec![-1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let out = integ.integrate(&g, &cons);
        for c in &cons {
            assert!(dot(c, &out) >= -1e-4);
        }
    }

    #[test]
    fn aggregation_integration_respects_global_direction() {
        let integ = GradientIntegrator::new(0.0);
        let g_before = vec![1.0, 0.0];
        let g_after = vec![-1.0, 1.0];
        let out = integ.integrate_across_aggregation(&g_before, &g_after);
        assert!(
            dot(&g_after, &out) >= -1e-4,
            "conflict with post-aggregation gradient"
        );
        // And it stays as close to the local direction as possible:
        // closer to g_before than g_after is.
        let d_before: f32 = out
            .iter()
            .zip(&g_before)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>();
        let d_after: f32 = out
            .iter()
            .zip(&g_after)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>();
        assert!(d_before < d_after);
    }

    #[test]
    fn aligned_gradients_pass_through() {
        let integ = GradientIntegrator::new(0.0);
        let g = vec![1.0, 1.0];
        let out = integ.integrate_across_aggregation(&g, &[2.0, 2.0]);
        assert_eq!(out, g);
    }
}
