//! Gradient integrator (§III-D) — a thin, configured wrapper over the
//! dual-QP solver in `fedknow_math::qp`, instrumented with the
//! learning-dynamics metrics the paper's Eqs. 3–5 hinge on:
//!
//! * `integrate.conflict_angle_cdeg` — pre-QP angle (centi-degrees)
//!   between the task gradient `g` and each signature-task gradient
//!   `g_i`; angles past 90° are the interference Eq. 3 constrains away.
//! * `integrate.post_angle_cdeg` — the same angles after rotation
//!   (Eq. 5 recovery `g' = Gᵀv + g`); should sit at ≤ 90°.
//! * `integrate.violations` — count of acute-angle constraint
//!   violations (`⟨g_i, g⟩ < 0`) observed before solving.
//! * `integrate.rotation_pm` / series `integrate.rotation` — how far
//!   the QP moved the gradient, `‖g' − g‖ / ‖g‖` (per-mille histogram
//!   plus a per-round f64 series).
//! * series `integrate.conflict_angle_deg` — mean pre-QP angle per
//!   call, round-indexed for trajectory plots (`obs_dash`).

use fedknow_math::qp::{integrate_gradient, QpConfig};
use fedknow_math::MathError;
use fedknow_obs::{CounterHandle, HistHandle};

static QP_SOLVE_NS: HistHandle = HistHandle::new("qp.solve_ns");
static QP_ITERS: HistHandle = HistHandle::new("qp.iters");
static QP_FAST_PATH: CounterHandle = CounterHandle::new("qp.fast_path");
static QP_FALLBACK: CounterHandle = CounterHandle::new("qp.fallback");
static CONFLICT_ANGLE_CDEG: HistHandle = HistHandle::new("integrate.conflict_angle_cdeg");
static POST_ANGLE_CDEG: HistHandle = HistHandle::new("integrate.post_angle_cdeg");
static VIOLATIONS: CounterHandle = CounterHandle::new("integrate.violations");
static ROTATION_PM: HistHandle = HistHandle::new("integrate.rotation_pm");

/// Angle between two vectors in degrees (`0` for a zero vector).
fn angle_deg(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt()))
        .clamp(-1.0, 1.0)
        .acos()
        .to_degrees()
}

/// Relative rotation `‖g' − g‖ / ‖g‖` (`0` for a zero input gradient).
fn relative_rotation(g: &[f32], rotated: &[f32]) -> f64 {
    let mut diff = 0.0f64;
    let mut norm = 0.0f64;
    for (&a, &b) in g.iter().zip(rotated) {
        let d = b as f64 - a as f64;
        diff += d * d;
        norm += a as f64 * a as f64;
    }
    if norm == 0.0 {
        return 0.0;
    }
    (diff / norm).sqrt()
}

/// Rotates gradients to keep acute angles with constraint gradients
/// (Eqs. 3–5).
#[derive(Debug, Clone)]
pub struct GradientIntegrator {
    qp: QpConfig,
}

impl GradientIntegrator {
    /// New integrator with the given constraint margin.
    pub fn new(margin: f64) -> Self {
        Self {
            qp: QpConfig {
                margin,
                ..Default::default()
            },
        }
    }

    /// Integrate `g` against the signature gradients `constraints`:
    /// returns `g'` minimally rotated so `⟨g_i, g'⟩ ≥ 0` for all `i`.
    ///
    /// Falls back to the un-rotated gradient if the QP fails to converge
    /// (never observed with k ≤ 20, but training must not abort on a
    /// pathological batch).
    pub fn integrate(&self, g: &[f32], constraints: &[Vec<f32>]) -> Vec<f32> {
        if fedknow_obs::is_enabled() {
            self.record_pre_qp(g, constraints);
        }
        let result = {
            // Timer scoped to the solve alone: the angle/rotation
            // telemetry and verify checks below must not inflate
            // qp.solve_ns.
            let _t = QP_SOLVE_NS.timer();
            integrate_gradient(g, constraints, &self.qp)
        };
        let out = match result {
            Ok(r) => {
                if r.already_feasible {
                    QP_FAST_PATH.add(1);
                } else {
                    QP_ITERS.record(r.iterations as u64);
                }
                if fedknow_verify::is_enabled() {
                    fedknow_verify::report(
                        "integrator.rotation",
                        fedknow_verify::check::integrator_rotation(
                            g,
                            constraints,
                            &r.dual,
                            &r.gradient,
                            self.qp.margin,
                        ),
                    );
                }
                r.gradient
            }
            Err(MathError::QpNotConverged { .. }) => {
                QP_FALLBACK.add(1);
                g.to_vec()
            }
            Err(e) => panic!("gradient integration failed: {e}"),
        };
        if fedknow_obs::is_enabled() {
            self.record_post_qp(g, constraints, &out);
        }
        out
    }

    /// Pre-QP learning dynamics: per-signature-task conflict angles and
    /// the count of violated acute-angle constraints (Eq. 3).
    fn record_pre_qp(&self, g: &[f32], constraints: &[Vec<f32>]) {
        if constraints.is_empty() {
            return;
        }
        let mut sum = 0.0f64;
        let mut violations = 0u64;
        for c in constraints {
            let deg = angle_deg(g, c);
            CONFLICT_ANGLE_CDEG.record((deg * 100.0).round() as u64);
            if deg > 90.0 {
                violations += 1;
            }
            sum += deg;
        }
        if violations > 0 {
            VIOLATIONS.add(violations);
        }
        fedknow_obs::series(
            "integrate.conflict_angle_deg",
            sum / constraints.len() as f64,
        );
    }

    /// Post-QP dynamics: the rotated angles (should be ≤ 90°) and the
    /// relative rotation magnitude `‖g' − g‖ / ‖g‖` (Eq. 5).
    fn record_post_qp(&self, g: &[f32], constraints: &[Vec<f32>], rotated: &[f32]) {
        for c in constraints {
            POST_ANGLE_CDEG.record((angle_deg(rotated, c) * 100.0).round() as u64);
        }
        let rotation = relative_rotation(g, rotated);
        ROTATION_PM.record((rotation * 1000.0).round() as u64);
        fedknow_obs::series("integrate.rotation", rotation);
    }

    /// The cross-aggregation integration (§III-A): rotate the
    /// pre-aggregation gradient `g_before` to have an acute angle with
    /// the post-aggregation gradient `g_after`, producing the update
    /// that "incorporates global information from other clients, while
    /// avoiding decreasing model accuracy in local data".
    pub fn integrate_across_aggregation(&self, g_before: &[f32], g_after: &[f32]) -> Vec<f32> {
        self.integrate(g_before, std::slice::from_ref(&g_after.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn integration_enforces_acute_angles() {
        let integ = GradientIntegrator::new(0.0);
        let g = vec![1.0, 0.0, 0.0];
        let cons = vec![vec![-1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let out = integ.integrate(&g, &cons);
        for c in &cons {
            assert!(dot(c, &out) >= -1e-4);
        }
    }

    #[test]
    fn aggregation_integration_respects_global_direction() {
        let integ = GradientIntegrator::new(0.0);
        let g_before = vec![1.0, 0.0];
        let g_after = vec![-1.0, 1.0];
        let out = integ.integrate_across_aggregation(&g_before, &g_after);
        assert!(
            dot(&g_after, &out) >= -1e-4,
            "conflict with post-aggregation gradient"
        );
        // And it stays as close to the local direction as possible:
        // closer to g_before than g_after is.
        let d_before: f32 = out
            .iter()
            .zip(&g_before)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>();
        let d_after: f32 = out
            .iter()
            .zip(&g_after)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>();
        assert!(d_before < d_after);
    }

    #[test]
    fn angle_and_rotation_helpers() {
        assert!((angle_deg(&[1.0, 0.0], &[0.0, 1.0]) - 90.0).abs() < 1e-9);
        assert!((angle_deg(&[1.0, 0.0], &[-1.0, 0.0]) - 180.0).abs() < 1e-9);
        assert_eq!(angle_deg(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((relative_rotation(&[3.0, 0.0], &[3.0, 4.0]) - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(relative_rotation(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn aligned_gradients_pass_through() {
        let integ = GradientIntegrator::new(0.0);
        let g = vec![1.0, 1.0];
        let out = integ.integrate_across_aggregation(&g, &[2.0, 2.0]);
        assert_eq!(out, g);
    }
}
