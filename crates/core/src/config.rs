//! FedKNOW hyper-parameters.

use crate::extractor::ExtractionStrategy;
use fedknow_math::distance::DistanceMetric;
use serde::{Deserialize, Serialize};

/// All FedKNOW knobs, with the paper's evaluation defaults (§V-B):
/// ρ = 10 %, k = 10, Wasserstein selection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FedKnowConfig {
    /// Fraction ρ of weights retained as each task's signature knowledge.
    pub rho: f64,
    /// Number k of most-dissimilar past gradients used in integration.
    pub k: usize,
    /// Metric ranking gradient dissimilarity for signature-task
    /// selection.
    pub metric: DistanceMetric,
    /// Pruning flavour for knowledge extraction (§III-B: magnitude by
    /// default, with L1/L2 filter pruning as structured alternatives).
    pub strategy: ExtractionStrategy,
    /// QP constraint margin (0 reproduces Eq. 3 exactly).
    pub margin: f64,
    /// Iterations of knowledge fine-tuning after extraction (§III-B
    /// step 3).
    pub knowledge_finetune_iters: usize,
    /// Fine-tuning iterations after each global aggregation ("one epoch
    /// of local samples", §III-A). `None` = exactly one epoch of the
    /// current task; `Some(n)` caps it.
    pub post_agg_iters: Option<usize>,
    /// Base learning rate for local training.
    pub local_lr: f64,
    /// Per-step learning-rate decrease rate (paper: 1e-4 / 1e-5).
    pub lr_decrease: f64,
    /// Base learning rate for the post-aggregation fine-tune. Theorem 1
    /// wants this to decay at O(r^{-1}); the base is typically the local
    /// rate.
    pub global_lr: f64,
}

impl Default for FedKnowConfig {
    fn default() -> Self {
        Self {
            rho: 0.10,
            k: 10,
            metric: DistanceMetric::Wasserstein,
            strategy: ExtractionStrategy::Magnitude,
            margin: 0.0,
            knowledge_finetune_iters: 5,
            post_agg_iters: None,
            local_lr: 0.05,
            lr_decrease: 1e-4,
            global_lr: 0.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_headline_setting() {
        let c = FedKnowConfig::default();
        assert!((c.rho - 0.10).abs() < 1e-12);
        assert_eq!(c.k, 10);
        assert_eq!(c.metric, DistanceMetric::Wasserstein);
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let c = FedKnowConfig {
            rho: 0.2,
            k: 5,
            ..Default::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: FedKnowConfig = serde_json::from_str(&json).unwrap();
        assert!((back.rho - 0.2).abs() < 1e-12);
        assert_eq!(back.k, 5);
    }
}
