//! Knowledge extractor (§III-B).
//!
//! Signature task knowledge is the top-ρ fraction of model weights by
//! magnitude (weight-based pruning, Eq. 1). Extraction is a three-step
//! process: (1) the task has already been trained to convergence by the
//! normal round loop; (2) select the top-ρ weights; (3) fine-tune *only*
//! the retained weights for a few iterations, leaving the rest untouched,
//! which recovers most of the pruned model's accuracy (the DSD/dense-
//! sparse-dense observation the paper cites).

use fedknow_fl::LocalTrainer;
use fedknow_math::SparseVec;
use fedknow_nn::model::ParamSegment;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// How the retained weights are chosen.
///
/// The paper's default is unstructured magnitude pruning, and §III-B
/// notes it is "feasible to extend the above knowledge extraction and
/// restoring process with structured pruning techniques such as L1-norm
/// or L2-norm filter pruning \[29\]" — both variants are provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractionStrategy {
    /// Unstructured: keep the top-ρ individual weights by |w| (Eq. 1).
    Magnitude,
    /// Structured: keep whole filters (rows of each weight tensor)
    /// ranked by L1 norm, until ρ of each tensor's weights are kept.
    FilterL1,
    /// Structured: like [`ExtractionStrategy::FilterL1`] with L2 norms.
    FilterL2,
}

/// Extracts and fine-tunes signature-task knowledge.
#[derive(Debug, Clone)]
pub struct KnowledgeExtractor {
    /// Fraction of weights retained.
    pub rho: f64,
    /// Fine-tuning iterations on the retained weights.
    pub finetune_iters: usize,
    /// Pruning flavour.
    pub strategy: ExtractionStrategy,
}

impl KnowledgeExtractor {
    /// New extractor with unstructured magnitude pruning (the paper's
    /// default).
    pub fn new(rho: f64, finetune_iters: usize) -> Self {
        Self::with_strategy(rho, finetune_iters, ExtractionStrategy::Magnitude)
    }

    /// New extractor with an explicit pruning strategy.
    pub fn with_strategy(rho: f64, finetune_iters: usize, strategy: ExtractionStrategy) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1]");
        Self {
            rho,
            finetune_iters,
            strategy,
        }
    }

    /// Step 2: select the top-ρ weights of the trained model
    /// (unstructured magnitude pruning).
    pub fn extract(&self, params: &[f32]) -> SparseVec {
        let kept = SparseVec::top_fraction_by_magnitude(params, self.rho);
        if fedknow_verify::is_enabled() {
            fedknow_verify::report(
                "extractor.dominance",
                fedknow_verify::check::top_rho_dominance(params, &kept),
            );
        }
        kept
    }

    /// Step 2 with layout awareness: dispatches on the configured
    /// strategy. Filter pruning keeps whole output filters (rows) of
    /// each rank-2 weight tensor; rank-1 tensors (biases, BN affine)
    /// fall back to magnitude selection within the tensor.
    pub fn extract_structured(&self, params: &[f32], layout: &[ParamSegment]) -> SparseVec {
        let _t = fedknow_obs::timer("extract.topk_ns");
        match self.strategy {
            ExtractionStrategy::Magnitude => self.extract(params),
            ExtractionStrategy::FilterL1 => self.extract_filters(params, layout, 1),
            ExtractionStrategy::FilterL2 => self.extract_filters(params, layout, 2),
        }
    }

    fn extract_filters(&self, params: &[f32], layout: &[ParamSegment], norm: u32) -> SparseVec {
        let covered: usize = layout.iter().map(|s| s.len).sum();
        assert_eq!(
            covered,
            params.len(),
            "layout does not tile the parameter vector"
        );
        let mut indices: Vec<u32> = Vec::new();
        for seg in layout {
            let slice = &params[seg.offset..seg.offset + seg.len];
            if seg.shape.len() == 2 && seg.shape[0] > 1 {
                // Rank filters (rows) by their norm; keep whole rows
                // until ρ of the tensor's weights are retained.
                let (rows, fan) = (seg.shape[0], seg.shape[1]);
                let mut scored: Vec<(usize, f64)> = (0..rows)
                    .map(|r| {
                        let row = &slice[r * fan..(r + 1) * fan];
                        let score = match norm {
                            1 => row.iter().map(|v| v.abs() as f64).sum::<f64>(),
                            _ => row.iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt(),
                        };
                        (r, score)
                    })
                    .collect();
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                let keep_rows =
                    (((seg.len as f64) * self.rho / fan as f64).round() as usize).clamp(1, rows);
                let mut kept: Vec<usize> =
                    scored.into_iter().take(keep_rows).map(|(r, _)| r).collect();
                kept.sort_unstable();
                for r in kept {
                    for i in 0..fan {
                        indices.push((seg.offset + r * fan + i) as u32);
                    }
                }
            } else {
                // Rank-1 tensors: within-tensor magnitude selection.
                let keep = ((seg.len as f64 * self.rho).round() as usize).clamp(1, seg.len);
                let local = SparseVec::top_k_by_magnitude(slice, keep);
                indices.extend(local.indices().iter().map(|&i| seg.offset as u32 + i));
            }
        }
        indices.sort_unstable();
        let values = indices.iter().map(|&i| params[i as usize]).collect();
        SparseVec::new(params.len(), indices, values)
    }

    /// Steps 2–3: extract, then fine-tune only the retained weights on
    /// the current task data (masked SGD — gradients outside the
    /// knowledge support are zeroed), and return the refreshed knowledge.
    ///
    /// Returns the extracted knowledge and the extra FLOPs spent.
    pub fn extract_and_finetune(
        &self,
        trainer: &mut LocalTrainer,
        rng: &mut StdRng,
    ) -> (SparseVec, u64) {
        let params = trainer.model.flat_params();
        let layout = trainer.model.layout().to_vec();
        let mut knowledge = self.extract_structured(&params, &layout);
        if trainer.num_samples() == 0 {
            return (knowledge, 0);
        }
        let mask = knowledge.mask();
        let mut flops = 0u64;
        let _t = fedknow_obs::timer("extract.finetune_ns");
        for _ in 0..self.finetune_iters {
            let (x, labels) = trainer.next_batch(rng);
            trainer.compute_grads(&x, &labels);
            let mut grads = trainer.model.flat_grads();
            for (g, &m) in grads.iter_mut().zip(&mask) {
                if !m {
                    *g = 0.0;
                }
            }
            let lr = trainer.opt.current_lr() as f32;
            trainer.model.apply_update(&grads, lr);
            flops += trainer.iteration_flops();
        }
        // Refresh the stored values from the fine-tuned model.
        let tuned = trainer.model.flat_params();
        knowledge.gather_from(&tuned);
        (knowledge, flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::optim::{LrSchedule, Sgd};
    use fedknow_nn::ModelKind;

    fn trainer_with_task() -> (LocalTrainer, fedknow_data::ClientTask) {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(1);
        let data = generate(&spec, 3);
        let parts = partition(&data, 1, &PartitionConfig::default(), 3);
        let mut rng = seeded(0);
        let model = ModelKind::SixCnn.build(&mut rng, 3, spec.total_classes(), 1.0);
        let t = LocalTrainer::new(
            model,
            Sgd::new(0.05, LrSchedule::Constant),
            8,
            vec![3, 8, 8],
        );
        (t, parts[0].tasks[0].clone())
    }

    #[test]
    fn extract_keeps_rho_fraction() {
        let ex = KnowledgeExtractor::new(0.1, 0);
        let (mut trainer, _) = trainer_with_task();
        let params = trainer.model.flat_params();
        let k = ex.extract(&params);
        let expected = ((params.len() as f64) * 0.1).round() as usize;
        assert_eq!(k.nnz(), expected);
        assert_eq!(k.dense_len(), params.len());
    }

    #[test]
    fn finetune_only_touches_retained_weights() {
        let ex = KnowledgeExtractor::new(0.1, 3);
        let (mut trainer, task) = trainer_with_task();
        let mut rng = seeded(5);
        trainer.set_task(&task, &mut rng);
        let before = trainer.model.flat_params();
        let (knowledge, flops) = ex.extract_and_finetune(&mut trainer, &mut rng);
        let after = trainer.model.flat_params();
        let mask = knowledge.mask();
        let mut touched = 0usize;
        for i in 0..before.len() {
            if mask[i] {
                if before[i] != after[i] {
                    touched += 1;
                }
            } else {
                assert_eq!(
                    before[i], after[i],
                    "pruned weight {i} moved during fine-tune"
                );
            }
        }
        assert!(touched > 0, "fine-tune changed nothing");
        assert!(flops > 0);
    }

    #[test]
    fn knowledge_values_reflect_finetuned_model() {
        let ex = KnowledgeExtractor::new(0.2, 2);
        let (mut trainer, task) = trainer_with_task();
        let mut rng = seeded(6);
        trainer.set_task(&task, &mut rng);
        let (knowledge, _) = ex.extract_and_finetune(&mut trainer, &mut rng);
        let params = trainer.model.flat_params();
        for (&i, &v) in knowledge.indices().iter().zip(knowledge.values()) {
            assert_eq!(v, params[i as usize], "stored value is stale");
        }
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn zero_rho_rejected() {
        let _ = KnowledgeExtractor::new(0.0, 0);
    }
}

#[cfg(test)]
mod structured_tests {
    use super::*;
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    #[test]
    fn filter_pruning_keeps_whole_rows() {
        let mut rng = seeded(1);
        let mut model = ModelKind::SixCnn.build(&mut rng, 3, 10, 1.0);
        let params = model.flat_params();
        let layout = model.layout().to_vec();
        let ex = KnowledgeExtractor::with_strategy(0.2, 0, ExtractionStrategy::FilterL1);
        let k = ex.extract_structured(&params, &layout);
        // Every rank-2 segment's retained indices must form complete rows.
        let mask = k.mask();
        for seg in &layout {
            if seg.shape.len() == 2 && seg.shape[0] > 1 {
                let fan = seg.shape[1];
                for r in 0..seg.shape[0] {
                    let row = &mask[seg.offset + r * fan..seg.offset + (r + 1) * fan];
                    let kept = row.iter().filter(|&&m| m).count();
                    assert!(
                        kept == 0 || kept == fan,
                        "partial filter retained in {} (row {r}: {kept}/{fan})",
                        seg.name
                    );
                }
            }
        }
        assert!(k.nnz() > 0);
    }

    #[test]
    fn l1_and_l2_strategies_can_differ() {
        // A crafted 2-row tensor where L1 and L2 rank rows differently:
        // row 0 = many small values (large L1, small L2),
        // row 1 = one big value (small L1, large L2).
        let params = vec![0.5, 0.5, 0.5, 0.5, 1.2, 0.0, 0.0, 0.0];
        let layout = vec![fedknow_nn::model::ParamSegment {
            name: "linear.weight".into(),
            offset: 0,
            len: 8,
            shape: vec![2, 4],
        }];
        let l1 = KnowledgeExtractor::with_strategy(0.5, 0, ExtractionStrategy::FilterL1)
            .extract_structured(&params, &layout);
        let l2 = KnowledgeExtractor::with_strategy(0.5, 0, ExtractionStrategy::FilterL2)
            .extract_structured(&params, &layout);
        // ρ=0.5 keeps one row of two. L1: row 0 (sum 2.0 > 1.2);
        // L2: row 1 (norm 1.2 > 1.0).
        assert_eq!(l1.indices(), &[0, 1, 2, 3]);
        assert_eq!(l2.indices(), &[4, 5, 6, 7]);
    }

    #[test]
    fn magnitude_strategy_matches_unstructured_extract() {
        let mut rng = seeded(2);
        let mut model = ModelKind::SixCnn.build(&mut rng, 3, 10, 1.0);
        let params = model.flat_params();
        let layout = model.layout().to_vec();
        let ex = KnowledgeExtractor::new(0.1, 0);
        assert_eq!(ex.extract_structured(&params, &layout), ex.extract(&params));
    }

    #[test]
    fn structured_retention_close_to_rho() {
        let mut rng = seeded(3);
        let mut model = ModelKind::ResNet18.build(&mut rng, 3, 10, 1.0);
        let params = model.flat_params();
        let layout = model.layout().to_vec();
        for strat in [ExtractionStrategy::FilterL1, ExtractionStrategy::FilterL2] {
            let ex = KnowledgeExtractor::with_strategy(0.1, 0, strat);
            let k = ex.extract_structured(&params, &layout);
            let frac = k.nnz() as f64 / params.len() as f64;
            assert!((0.05..0.25).contains(&frac), "{strat:?} kept {frac}");
        }
    }
}
