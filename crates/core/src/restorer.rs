//! Gradient restorer (§III-C).
//!
//! Restores a previous task's gradient *without its training samples*
//! (Eq. 2): the model restricted to the task's signature knowledge `W_i`
//! predicts pseudo-labels on the *current* task's batch, and the restored
//! gradient is ∇ of the cross-entropy between the live model's
//! predictions and those pseudo-labels — the direction that keeps the
//! live model consistent with what task `i` knew.

use fedknow_math::distance::{most_dissimilar, DistanceMetric};
use fedknow_math::{SparseVec, Tensor};
use fedknow_nn::loss::soft_cross_entropy;
use fedknow_nn::Model;
use fedknow_obs::HistHandle;

/// Distillation loss per restore call, in milli-nats (Eq. 2's CE
/// between live predictions and pseudo-labels).
static DISTILL_LOSS_MNAT: HistHandle = HistHandle::new("restore.distill_loss_mnat");
/// Mean pseudo-label entropy per restore call, in milli-nats — high
/// entropy means the pruned teacher is uncertain and its restored
/// gradient carries little signal.
static PSEUDO_ENTROPY_MNAT: HistHandle = HistHandle::new("restore.pseudo_entropy_mnat");

/// Mean Shannon entropy (nats) of the rows of a `[n, c]` distribution.
fn mean_row_entropy(dist: &Tensor) -> f64 {
    let rows = dist.shape().first().copied().unwrap_or(0);
    if rows == 0 {
        return 0.0;
    }
    let cols = dist.data().len() / rows;
    let mut total = 0.0f64;
    for row in dist.data().chunks_exact(cols) {
        total -= row
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p as f64 * (p as f64).ln())
            .sum::<f64>();
    }
    total / rows as f64
}

/// Restores past-task gradients from retained knowledge.
#[derive(Debug, Clone, Default)]
pub struct GradientRestorer;

impl GradientRestorer {
    /// Restore task `i`'s gradient on the batch `x` (Eq. 2).
    ///
    /// The model's parameters are temporarily replaced by the dense
    /// expansion of `knowledge` (retained weights keep their value,
    /// pruned ones are zero) to produce the pseudo-label distribution;
    /// the gradient is then taken at the *current* weights against that
    /// distribution. Parameters and gradient buffers are restored on
    /// exit.
    pub fn restore(&self, model: &mut Model, knowledge: &SparseVec, x: &Tensor) -> Vec<f32> {
        let _t = fedknow_obs::timer("restore.distill_ns");
        let current = model.flat_params();
        assert_eq!(
            knowledge.dense_len(),
            current.len(),
            "knowledge/model size mismatch"
        );
        // Pseudo-labels from the pruned snapshot (eval mode: no caches,
        // running BN statistics).
        model.set_flat_params(&knowledge.to_dense());
        let teacher_logits = model.forward(x.clone(), false);
        let target = teacher_logits.softmax_rows();
        // Gradient of the live model against the pseudo-labels.
        model.set_flat_params(&current);
        model.zero_grad();
        let logits = model.forward(x.clone(), true);
        let (loss, grad) = soft_cross_entropy(&logits, &target);
        if fedknow_verify::is_enabled() {
            let (rows, cols) = (logits.shape()[0], logits.shape()[1]);
            fedknow_verify::report(
                "restorer.grad_rows",
                fedknow_verify::check::grad_rows_sum_zero(grad.data(), rows, cols),
            );
        }
        if fedknow_obs::is_enabled() {
            DISTILL_LOSS_MNAT.record((loss.max(0.0) * 1000.0).round() as u64);
            let entropy = mean_row_entropy(&target);
            PSEUDO_ENTROPY_MNAT.record((entropy * 1000.0).round() as u64);
            fedknow_obs::series("restore.distill_loss", loss as f64);
            fedknow_obs::series("restore.pseudo_entropy", entropy);
        }
        model.backward(grad);
        let restored = model.flat_grads();
        model.zero_grad();
        restored
    }

    /// Restore gradients for every knowledge entry and rank them: returns
    /// the indices of the `k` tasks whose restored gradients are most
    /// dissimilar from `current_grad` (the signature tasks, §III-C).
    pub fn select_signature_tasks(
        &self,
        model: &mut Model,
        knowledges: &[SparseVec],
        x: &Tensor,
        current_grad: &[f32],
        k: usize,
        metric: DistanceMetric,
    ) -> Vec<usize> {
        if knowledges.is_empty() || k == 0 {
            return Vec::new();
        }
        let _t = fedknow_obs::timer("restore.select_ns");
        let candidates: Vec<Vec<f32>> = knowledges
            .iter()
            .map(|w| self.restore(model, w, x))
            .collect();
        most_dissimilar(metric, current_grad, &candidates, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_math::rng::{normal_vec, seeded};
    use fedknow_nn::ModelKind;

    fn model_and_batch() -> (Model, Tensor) {
        let mut rng = seeded(1);
        let model = ModelKind::SixCnn.build(&mut rng, 3, 10, 1.0);
        let x = Tensor::from_vec(normal_vec(&mut rng, 4 * 3 * 8 * 8, 0.0, 1.0), &[4, 3, 8, 8]);
        (model, x)
    }

    #[test]
    fn row_entropy_spans_one_hot_to_uniform() {
        let one_hot = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[1, 4]);
        assert_eq!(mean_row_entropy(&one_hot), 0.0);
        let uniform = Tensor::from_vec(vec![0.25; 4], &[1, 4]);
        assert!((mean_row_entropy(&uniform) - 4.0f64.ln()).abs() < 1e-9);
        let mixed = Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.5], &[2, 2]);
        assert!((mean_row_entropy(&mixed) - 2.0f64.ln() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn restore_leaves_model_untouched() {
        let (mut model, x) = model_and_batch();
        let before = model.flat_params();
        let knowledge = SparseVec::top_fraction_by_magnitude(&before, 0.1);
        let g = GradientRestorer.restore(&mut model, &knowledge, &x);
        assert_eq!(
            model.flat_params(),
            before,
            "restore must not mutate parameters"
        );
        assert!(
            model.flat_grads().iter().all(|&v| v == 0.0),
            "grad buffers must be cleared"
        );
        assert_eq!(g.len(), before.len());
    }

    #[test]
    fn full_knowledge_restores_near_zero_gradient() {
        // If the knowledge is the *entire* model, teacher and student
        // agree (up to BN train/eval differences in deeper nets; SixCnn
        // has no BN), so the distillation gradient is ~zero.
        let (mut model, x) = model_and_batch();
        let params = model.flat_params();
        let knowledge = SparseVec::top_fraction_by_magnitude(&params, 1.0);
        let g = GradientRestorer.restore(&mut model, &knowledge, &x);
        let norm: f32 = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(
            norm < 1e-3,
            "self-distillation gradient should vanish, got {norm}"
        );
    }

    #[test]
    fn partial_knowledge_restores_nonzero_gradient() {
        let (mut model, x) = model_and_batch();
        let params = model.flat_params();
        let knowledge = SparseVec::top_fraction_by_magnitude(&params, 0.05);
        let g = GradientRestorer.restore(&mut model, &knowledge, &x);
        let norm: f32 = g.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(norm > 1e-4, "pruned teacher should disagree, got {norm}");
    }

    #[test]
    fn selection_returns_k_distinct_indices() {
        let (mut model, x) = model_and_batch();
        let params = model.flat_params();
        let knowledges: Vec<SparseVec> = (1..=4)
            .map(|i| SparseVec::top_fraction_by_magnitude(&params, 0.02 * i as f64))
            .collect();
        let current = vec![0.01f32; params.len()];
        let sel = GradientRestorer.select_signature_tasks(
            &mut model,
            &knowledges,
            &x,
            &current,
            2,
            DistanceMetric::Wasserstein,
        );
        assert_eq!(sel.len(), 2);
        assert_ne!(sel[0], sel[1]);
        assert!(sel.iter().all(|&i| i < 4));
    }

    #[test]
    fn selection_handles_empty_and_oversized_k() {
        let (mut model, x) = model_and_batch();
        let current = vec![0.0f32; model.param_count()];
        let none = GradientRestorer.select_signature_tasks(
            &mut model,
            &[],
            &x,
            &current,
            5,
            DistanceMetric::Cosine,
        );
        assert!(none.is_empty());
        let params = model.flat_params();
        let ks = vec![SparseVec::top_fraction_by_magnitude(&params, 0.1)];
        let sel = GradientRestorer.select_signature_tasks(
            &mut model,
            &ks,
            &x,
            &current,
            5,
            DistanceMetric::Cosine,
        );
        assert_eq!(sel, vec![0]);
    }
}
