//! Binary wire format for signature-task knowledge.
//!
//! On a real deployment a client persists its knowledge across restarts
//! and could migrate it between devices; the format here is what the
//! byte-accounting in the communication model corresponds to: a small
//! fixed header, then delta-encoded `u32` indices and raw `f32` values.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  "FKNW"            4 bytes
//! version u16              2 bytes
//! task_id u32              4 bytes
//! dense_len u32            4 bytes
//! nnz     u32              4 bytes
//! indices u32 × nnz        (delta-encoded: first absolute, rest gaps)
//! values  f32 × nnz
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fedknow_fl::FrameError;
use fedknow_math::SparseVec;
use std::io::{Read, Write};

/// Format magic.
const MAGIC: &[u8; 4] = b"FKNW";
/// Current format version.
const VERSION: u16 = 1;

/// Errors decoding a knowledge blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Blob too short for the section being read.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Index stream was not strictly increasing or ran out of bounds.
    CorruptIndices,
    /// A knowledge value decoded to NaN or infinity — in-flight
    /// corruption that would poison any model it is restored into.
    NonFiniteValue {
        /// Position of the offending value in the value stream.
        index: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "knowledge blob truncated"),
            WireError::BadMagic => write!(f, "not a FedKNOW knowledge blob"),
            WireError::BadVersion(v) => write!(f, "unsupported knowledge format version {v}"),
            WireError::CorruptIndices => write!(f, "corrupt index stream"),
            WireError::NonFiniteValue { index } => {
                write!(f, "non-finite knowledge value at position {index}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Serialise a task's knowledge.
pub fn encode_knowledge(task_id: u32, knowledge: &SparseVec) -> Bytes {
    let nnz = knowledge.nnz();
    let mut buf = BytesMut::with_capacity(18 + 8 * nnz);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(task_id);
    buf.put_u32_le(knowledge.dense_len() as u32);
    buf.put_u32_le(nnz as u32);
    let mut prev = 0u32;
    for (i, &idx) in knowledge.indices().iter().enumerate() {
        let delta = if i == 0 { idx } else { idx - prev };
        buf.put_u32_le(delta);
        prev = idx;
    }
    for &v in knowledge.values() {
        buf.put_f32_le(v);
    }
    let blob = buf.freeze();
    if fedknow_verify::is_enabled() {
        fedknow_verify::report(
            "wire.roundtrip",
            match decode_knowledge(&blob) {
                Ok((t, k)) if t == task_id && &k == knowledge => Ok(()),
                Ok(_) => Err("decoded blob differs from the encoded knowledge".to_string()),
                Err(e) => Err(format!("encoded blob fails to decode: {e}")),
            },
        );
    }
    blob
}

/// Deserialise a knowledge blob; returns `(task_id, knowledge)`.
pub fn decode_knowledge(mut blob: &[u8]) -> Result<(u32, SparseVec), WireError> {
    if blob.remaining() < 18 {
        return Err(WireError::Truncated);
    }
    let mut magic = [0u8; 4];
    blob.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = blob.get_u16_le();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let task_id = blob.get_u32_le();
    let dense_len = blob.get_u32_le() as usize;
    let nnz = blob.get_u32_le() as usize;
    if blob.remaining() < 8 * nnz {
        return Err(WireError::Truncated);
    }
    let mut indices = Vec::with_capacity(nnz);
    let mut prev = 0u32;
    for i in 0..nnz {
        let delta = blob.get_u32_le();
        let idx = if i == 0 {
            delta
        } else {
            prev.checked_add(delta).ok_or(WireError::CorruptIndices)?
        };
        if i > 0 && delta == 0 {
            return Err(WireError::CorruptIndices);
        }
        if idx as usize >= dense_len {
            return Err(WireError::CorruptIndices);
        }
        indices.push(idx);
        prev = idx;
    }
    let mut values = Vec::with_capacity(nnz);
    for i in 0..nnz {
        let v = blob.get_f32_le();
        if !v.is_finite() {
            return Err(WireError::NonFiniteValue { index: i });
        }
        values.push(v);
    }
    Ok((task_id, SparseVec::new(dense_len, indices, values)))
}

/// Errors moving framed knowledge over a stream: either the frame
/// layer (torn read, hostile length) or the blob itself is bad.
#[derive(Debug, Clone, PartialEq)]
pub enum FramedError {
    /// The length-prefixed frame failed (truncated, oversize, I/O).
    Frame(FrameError),
    /// The frame arrived intact but its payload is not a valid
    /// knowledge blob.
    Blob(WireError),
}

impl std::fmt::Display for FramedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramedError::Frame(e) => write!(f, "knowledge frame: {e}"),
            FramedError::Blob(e) => write!(f, "knowledge payload: {e}"),
        }
    }
}

impl std::error::Error for FramedError {}

impl From<FrameError> for FramedError {
    fn from(e: FrameError) -> Self {
        FramedError::Frame(e)
    }
}

impl From<WireError> for FramedError {
    fn from(e: WireError) -> Self {
        FramedError::Blob(e)
    }
}

/// Encode a task's knowledge as one transport frame — the same
/// length-prefixed layout the federation transport uses, so persisted
/// or migrated knowledge and live traffic share one wire discipline
/// (including the [`fedknow_fl::MAX_FRAME_BYTES`] cap against hostile
/// lengths).
pub fn encode_framed_knowledge(task_id: u32, knowledge: &SparseVec) -> Result<Vec<u8>, FrameError> {
    fedknow_fl::framing::encode_frame(&encode_knowledge(task_id, knowledge))
}

/// Write one framed knowledge blob to a stream.
pub fn write_knowledge<W: Write>(
    w: &mut W,
    task_id: u32,
    knowledge: &SparseVec,
) -> Result<(), FrameError> {
    fedknow_fl::framing::write_frame(w, &encode_knowledge(task_id, knowledge))
}

/// Read one framed knowledge blob from a stream. `Ok(None)` is a clean
/// close on a frame boundary; a torn frame or corrupt payload is a
/// typed [`FramedError`], never a panic or an unbounded allocation.
pub fn read_knowledge<R: Read>(r: &mut R) -> Result<Option<(u32, SparseVec)>, FramedError> {
    match fedknow_fl::framing::read_frame(r)? {
        None => Ok(None),
        Some(payload) => Ok(Some(decode_knowledge(&payload)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_fl::MAX_FRAME_BYTES;

    fn sample() -> SparseVec {
        SparseVec::new(100, vec![0, 7, 42, 99], vec![1.5, -2.25, 0.0, 3.75])
    }

    #[test]
    fn roundtrip() {
        let k = sample();
        let blob = encode_knowledge(5, &k);
        let (task, back) = decode_knowledge(&blob).unwrap();
        assert_eq!(task, 5);
        assert_eq!(back, k);
    }

    #[test]
    fn size_matches_header_plus_payload() {
        let k = sample();
        let blob = encode_knowledge(0, &k);
        assert_eq!(blob.len(), 18 + 8 * k.nnz());
    }

    #[test]
    fn rejects_bad_magic() {
        let k = sample();
        let mut blob = encode_knowledge(0, &k).to_vec();
        blob[0] = b'X';
        assert_eq!(decode_knowledge(&blob).unwrap_err(), WireError::BadMagic);
    }

    #[test]
    fn rejects_wrong_version() {
        let k = sample();
        let mut blob = encode_knowledge(0, &k).to_vec();
        blob[4] = 99;
        assert!(matches!(
            decode_knowledge(&blob).unwrap_err(),
            WireError::BadVersion(_)
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let k = sample();
        let blob = encode_knowledge(0, &k).to_vec();
        for cut in [0, 3, 17, blob.len() - 1] {
            assert_eq!(
                decode_knowledge(&blob[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_out_of_bounds_indices() {
        // Hand-craft a blob whose index exceeds dense_len.
        let k = SparseVec::new(100, vec![99], vec![1.0]);
        let mut blob = encode_knowledge(0, &k).to_vec();
        // Bump the delta-encoded first index past dense_len (offset 18).
        blob[18] = 200;
        assert_eq!(
            decode_knowledge(&blob).unwrap_err(),
            WireError::CorruptIndices
        );
    }

    #[test]
    fn rejects_non_finite_values() {
        let k = SparseVec::new(100, vec![3, 9], vec![1.0, 2.0]);
        let mut blob = encode_knowledge(0, &k).to_vec();
        // Overwrite the second value (header 18 + 2 indices = 26, then
        // one value) with an f32 NaN bit pattern.
        let value_off = 18 + 8 + 4;
        blob[value_off..value_off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(
            decode_knowledge(&blob).unwrap_err(),
            WireError::NonFiniteValue { index: 1 }
        );
        let shown = WireError::NonFiniteValue { index: 1 }.to_string();
        assert!(shown.contains("non-finite"), "{shown}");
    }

    #[test]
    fn empty_knowledge_roundtrips() {
        let k = SparseVec::new(10, vec![], vec![]);
        let blob = encode_knowledge(7, &k);
        let (task, back) = decode_knowledge(&blob).unwrap();
        assert_eq!(task, 7);
        assert_eq!(back.nnz(), 0);
        assert_eq!(back.dense_len(), 10);
    }

    #[test]
    fn delta_encoding_is_compact_and_exact() {
        // Dense run of indices → deltas of 1.
        let k = SparseVec::new(1000, (10..20).collect(), vec![0.5; 10]);
        let blob = encode_knowledge(1, &k);
        let (_, back) = decode_knowledge(&blob).unwrap();
        assert_eq!(back.indices(), k.indices());
    }

    #[test]
    fn framed_knowledge_roundtrips_via_stream() {
        let k = sample();
        let mut wire = Vec::new();
        write_knowledge(&mut wire, 9, &k).unwrap();
        write_knowledge(&mut wire, 10, &k).unwrap();
        assert_eq!(wire, {
            let mut both = encode_framed_knowledge(9, &k).unwrap();
            both.extend(encode_framed_knowledge(10, &k).unwrap());
            both
        });
        let mut r = wire.as_slice();
        assert_eq!(read_knowledge(&mut r).unwrap(), Some((9, k.clone())));
        assert_eq!(read_knowledge(&mut r).unwrap(), Some((10, k)));
        assert_eq!(read_knowledge(&mut r).unwrap(), None, "clean close");
    }

    #[test]
    fn framed_hostile_length_errors_before_allocation() {
        // A frame header claiming far more than the cap must be
        // rejected as a frame error, not attempted as an allocation.
        let wire = ((MAX_FRAME_BYTES as u32) + 1).to_le_bytes().to_vec();
        let mut r = wire.as_slice();
        assert!(matches!(
            read_knowledge(&mut r).unwrap_err(),
            FramedError::Frame(FrameError::Oversize { .. })
        ));
    }

    #[test]
    fn framed_corrupt_payload_is_a_blob_error() {
        let k = sample();
        let mut wire = encode_framed_knowledge(2, &k).unwrap();
        wire[4] = b'X'; // first payload byte: breaks the magic
        let mut r = wire.as_slice();
        let err = read_knowledge(&mut r).unwrap_err();
        assert_eq!(err, FramedError::Blob(WireError::BadMagic));
        assert!(err.to_string().contains("knowledge payload"), "{err}");
    }

    #[test]
    fn framed_torn_stream_is_a_frame_error() {
        let k = sample();
        let wire = encode_framed_knowledge(2, &k).unwrap();
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            assert_eq!(
                read_knowledge(&mut r).unwrap_err(),
                FramedError::Frame(FrameError::Truncated),
                "cut at {cut}"
            );
        }
    }
}
