//! FedKNOW: federated continual learning with signature-task knowledge
//! integration (the paper's §III).
//!
//! A FedKNOW client owns three components, wired together by
//! [`client::FedKnowClient`]:
//!
//! 1. [`extractor::KnowledgeExtractor`] — after each task converges,
//!    retain the top-ρ fraction of model weights by magnitude as the
//!    task's *signature knowledge* `W_i` (Eq. 1), then fine-tune only
//!    those retained weights for a few iterations (§III-B step 3).
//! 2. [`restorer::GradientRestorer`] — re-derive a past task's gradient
//!    without its data (Eq. 2): forward the *current* batch through the
//!    model restricted to `W_i` to get pseudo-labels, then take the
//!    gradient of the cross-entropy between the live model's predictions
//!    and those pseudo-labels. Among all `m` past tasks, only the `k`
//!    whose gradients are most dissimilar from the current gradient
//!    (largest Wasserstein distance) are restored per iteration — the
//!    *signature tasks*.
//! 3. [`integrator::GradientIntegrator`] — solve the dual QP (Eqs. 3–5)
//!    so the update direction keeps an acute angle with every signature
//!    gradient (forgetting prevention), and, across each aggregation
//!    boundary, with the post-aggregation gradient (negative-transfer
//!    prevention, §III-A/§III-E).

pub mod client;
pub mod config;
pub mod extractor;
pub mod integrator;
pub mod restorer;
pub mod wire;

pub use client::FedKnowClient;
pub use config::FedKnowConfig;
pub use extractor::{ExtractionStrategy, KnowledgeExtractor};
pub use integrator::GradientIntegrator;
pub use restorer::GradientRestorer;
