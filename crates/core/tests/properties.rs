//! Property-based tests for the FedKNOW components.

use fedknow::wire::{decode_knowledge, encode_framed_knowledge, encode_knowledge};
use fedknow::{ExtractionStrategy, GradientIntegrator, GradientRestorer, KnowledgeExtractor};
use fedknow_fl::framing::{
    read_frame, read_frame_traced, write_frame, write_frame_traced, FrameDecoder, FrameError,
    TraceCtx, FRAME_FLAG_CTX, MAX_FRAME_BYTES,
};
use fedknow_math::rng::seeded;
use fedknow_math::{SparseVec, Tensor};
use fedknow_nn::ModelKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The wire format round-trips arbitrary sparse knowledge exactly.
    #[test]
    fn wire_roundtrip(
        task_id in 0u32..10_000,
        dense_len in 1usize..500,
        entries in prop::collection::vec((any::<u16>(), -100.0f32..100.0), 0..64),
    ) {
        // Build a valid strictly-increasing index set within bounds.
        let mut idx: Vec<u32> =
            entries.iter().map(|(i, _)| (*i as u32) % dense_len as u32).collect();
        idx.sort_unstable();
        idx.dedup();
        let values: Vec<f32> = entries.iter().take(idx.len()).map(|(_, v)| *v).collect();
        let k = SparseVec::new(dense_len, idx, values);
        let blob = encode_knowledge(task_id, &k);
        let (t, back) = decode_knowledge(&blob).unwrap();
        prop_assert_eq!(t, task_id);
        prop_assert_eq!(back, k);
    }

    /// Truncating a valid blob anywhere must error, never panic or
    /// return garbage.
    #[test]
    fn wire_truncation_always_errors(cut_frac in 0.0f64..0.999) {
        let k = SparseVec::new(50, vec![1, 5, 30], vec![1.0, -2.0, 3.0]);
        let blob = encode_knowledge(3, &k);
        let cut = ((blob.len() as f64) * cut_frac) as usize;
        prop_assert!(decode_knowledge(&blob[..cut]).is_err());
    }

    /// The integrated gradient never conflicts with any constraint, for
    /// random gradients of realistic dimensionality.
    #[test]
    fn integrator_never_conflicts(
        seed in 0u64..10_000, k in 1usize..6
    ) {
        let mut rng = seeded(seed);
        let dim = 64;
        let g = fedknow_math::rng::normal_vec(&mut rng, dim, 0.0, 1.0);
        let cons: Vec<Vec<f32>> = (0..k)
            .map(|_| fedknow_math::rng::normal_vec(&mut rng, dim, 0.0, 1.0))
            .collect();
        let out = GradientIntegrator::new(0.0).integrate(&g, &cons);
        for c in &cons {
            let d: f64 = c.iter().zip(&out).map(|(&a, &b)| a as f64 * b as f64).sum();
            prop_assert!(d >= -1e-3, "conflict {d}");
        }
    }

    /// Every extraction strategy keeps a fraction of weights in a sane
    /// band around ρ and never invents indices.
    #[test]
    fn extraction_fraction_band(
        rho in 0.05f64..0.4,
        strategy_pick in 0usize..3,
    ) {
        let strategy = [
            ExtractionStrategy::Magnitude,
            ExtractionStrategy::FilterL1,
            ExtractionStrategy::FilterL2,
        ][strategy_pick];
        let mut rng = seeded(7);
        let mut model = ModelKind::SixCnn.build(&mut rng, 3, 10, 1.0);
        let params = model.flat_params();
        let layout = model.layout().to_vec();
        let ex = KnowledgeExtractor::with_strategy(rho, 0, strategy);
        let k = ex.extract_structured(&params, &layout);
        prop_assert_eq!(k.dense_len(), params.len());
        let frac = k.nnz() as f64 / params.len() as f64;
        prop_assert!(
            frac > rho * 0.4 && frac < rho * 2.5 + 0.02,
            "{:?} at rho {} kept {}", strategy, rho, frac
        );
        // Stored values must mirror the parameter vector.
        for (&i, &v) in k.indices().iter().zip(k.values()) {
            prop_assert_eq!(v, params[i as usize]);
        }
    }

    /// Gradient restoration is side-effect free for arbitrary knowledge.
    #[test]
    fn restore_is_pure(rho in 0.02f64..0.5, seed in 0u64..100) {
        let mut rng = seeded(seed);
        let mut model = ModelKind::SixCnn.build(&mut rng, 3, 10, 1.0);
        let params = model.flat_params();
        let k = SparseVec::top_fraction_by_magnitude(&params, rho);
        let x = Tensor::from_vec(
            fedknow_math::rng::normal_vec(&mut rng, 2 * 3 * 8 * 8, 0.0, 1.0),
            &[2, 3, 8, 8],
        );
        let g = GradientRestorer.restore(&mut model, &k, &x);
        prop_assert_eq!(g.len(), params.len());
        prop_assert_eq!(model.flat_params(), params);
        prop_assert!(g.iter().all(|v| v.is_finite()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The transport frame layer round-trips arbitrary payloads exactly,
    /// both through a stream and through the incremental decoder.
    #[test]
    fn frames_roundtrip(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..300), 1..6
    )) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut r = wire.as_slice();
        for p in &payloads {
            prop_assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(p));
        }
        prop_assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    /// Truncating a framed stream at *every* byte offset inside the
    /// last frame is a typed `Truncated` error — never a panic, never
    /// a silent partial message.
    #[test]
    fn frame_truncation_at_every_offset_errors(
        payload in prop::collection::vec(any::<u8>(), 1..200)
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            let err = read_frame(&mut r).unwrap_err();
            prop_assert!(err == FrameError::Truncated, "cut at {cut}: {err:?}");
        }
    }

    /// The incremental decoder reassembles frames from arbitrary
    /// fragmentation — interleaved partial reads of any chunk size
    /// yield exactly the frames that were sent.
    #[test]
    fn frame_decoder_survives_arbitrary_fragmentation(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..200), 1..5
        ),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut d = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in wire.chunks(chunk) {
            d.feed(piece);
            while let Some(f) = d.next_frame().unwrap() {
                out.push(f);
            }
        }
        prop_assert_eq!(out, payloads);
        prop_assert!(d.is_empty());
    }

    /// Any length header beyond the cap is rejected before allocation,
    /// on both the stream reader and the incremental decoder. Bit 31 is
    /// the v2 context flag, not part of the length: a hostile word with
    /// it set is judged (and reported) on the *masked* length.
    #[test]
    fn oversize_headers_always_rejected(
        extra in 1u64..(1u64 << 31) - MAX_FRAME_BYTES as u64,
        flagged in any::<bool>(),
    ) {
        let claimed = MAX_FRAME_BYTES as u64 + extra;
        let word = claimed as u32 | if flagged { FRAME_FLAG_CTX } else { 0 };
        let wire = word.to_le_bytes().to_vec();
        let mut r = wire.as_slice();
        prop_assert_eq!(
            read_frame(&mut r).unwrap_err(),
            FrameError::Oversize { len: claimed }
        );
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        prop_assert_eq!(
            d.next_frame().unwrap_err(),
            FrameError::Oversize { len: claimed }
        );
    }

    /// v1 (bare) and v2 (context-carrying) frames interleave freely on
    /// one stream: the traced reader surfaces exactly the contexts that
    /// were attached, the legacy reader sees the same payloads while
    /// skipping the context blocks, and the incremental decoder agrees
    /// under arbitrary fragmentation.
    #[test]
    fn mixed_version_frames_interoperate(
        frames in prop::collection::vec(
            (
                prop::collection::vec(any::<u8>(), 0..200),
                any::<bool>(),
                (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            ),
            1..6
        ),
        chunk in 1usize..48,
    ) {
        let mut wire = Vec::new();
        let mut want = Vec::new();
        for (payload, traced, (trace, span, parent, round)) in &frames {
            // Every u64 bit pattern is a valid context field, so a
            // derived timestamp loses no coverage over a drawn one.
            let ctx = traced.then(|| TraceCtx {
                trace: *trace,
                span: *span,
                parent: *parent,
                round: *round,
                send_ts_ns: trace.rotate_left(17) ^ span,
            });
            write_frame_traced(&mut wire, payload, ctx.as_ref()).unwrap();
            want.push((ctx, payload.clone()));
        }
        let mut r = wire.as_slice();
        for w in &want {
            prop_assert_eq!(read_frame_traced(&mut r).unwrap().as_ref(), Some(w));
        }
        prop_assert_eq!(read_frame_traced(&mut r).unwrap(), None);
        let mut r = wire.as_slice();
        for (_, p) in &want {
            prop_assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(p));
        }
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            d.feed(piece);
            while let Some(f) = d.next_frame_traced().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, want);
        prop_assert!(d.is_empty());
    }

    /// Truncating a context-carrying frame at *every* byte offset —
    /// inside the header, the context block, or the payload — is a
    /// typed `Truncated` error, never a panic or a partial message.
    #[test]
    fn traced_frame_truncation_at_every_offset_errors(
        payload in prop::collection::vec(any::<u8>(), 1..100),
        ids in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let (trace, span, parent, round) = ids;
        let ctx = TraceCtx { trace, span, parent, round, send_ts_ns: trace ^ round };
        let mut wire = Vec::new();
        write_frame_traced(&mut wire, &payload, Some(&ctx)).unwrap();
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            let err = read_frame_traced(&mut r).unwrap_err();
            prop_assert!(err == FrameError::Truncated, "cut at {cut}: {err:?}");
        }
    }

    /// Framed knowledge blobs survive the full stack: knowledge →
    /// blob → frame → fragmented transport → frame → blob → knowledge.
    #[test]
    fn framed_knowledge_roundtrips_fragmented(
        task_id in 0u32..1000,
        dense_len in 1usize..300,
        n in 0usize..20,
        chunk in 1usize..32,
    ) {
        let idx: Vec<u32> = (0..n.min(dense_len)).map(|i| i as u32).collect();
        let values: Vec<f32> = idx.iter().map(|&i| i as f32 * 0.5 - 1.0).collect();
        let k = SparseVec::new(dense_len, idx, values);
        let framed = encode_framed_knowledge(task_id, &k).unwrap();
        let mut d = FrameDecoder::new();
        let mut got = None;
        for piece in framed.chunks(chunk) {
            d.feed(piece);
            if let Some(f) = d.next_frame().unwrap() {
                got = Some(f);
            }
        }
        let payload = got.expect("one complete frame");
        let (t, back) = decode_knowledge(&payload).unwrap();
        prop_assert_eq!(t, task_id);
        prop_assert_eq!(back, k);
    }
}
