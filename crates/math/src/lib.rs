//! Numerical primitives for the FedKNOW reproduction.
//!
//! This crate is the lowest layer of the workspace: a small, dependency-light
//! tensor library plus the specialised numerics that the FedKNOW algorithm
//! needs —
//!
//! * [`tensor::Tensor`] — a dense row-major `f32` tensor with the handful of
//!   operations a manual-backprop neural network requires (GEMM, im2col,
//!   reductions, broadcasting over the leading batch axis),
//! * [`sparse::SparseVec`] — index/value pairs used to store *signature task
//!   knowledge* (the top-ρ fraction of model weights by magnitude),
//! * [`qp`] — a non-negative quadratic-program solver for the GEM-style dual
//!   (paper Eq. 4) used by the gradient integrator,
//! * [`distance`] — gradient-distance metrics (1-D Wasserstein, cosine,
//!   Euclidean) used to pick the *most dissimilar* signature tasks,
//! * [`rng`] — seeded sampling helpers (normal/uniform) so every experiment
//!   is reproducible without pulling in `rand_distr`,
//! * [`gemm`] — the cache-blocked, register-tiled GEMM (packed A/B panels,
//!   AVX-512/AVX2 microkernels with a portable fallback) that every matmul
//!   and conv lowers onto,
//! * [`parallel`] — the kernel thread-count policy and deterministic work
//!   partitioner (`FEDKNOW_KERNEL_THREADS`),
//! * [`pool`] — a thread-local buffer recycler that keeps the steady-state
//!   training loop allocation-free.
//!
//! Everything here is deterministic given a seed and panics only on
//! programmer error (shape mismatches); recoverable conditions return
//! [`MathError`].

pub mod distance;
pub mod flops;
pub mod gemm;
pub mod parallel;
pub mod pool;
pub mod qp;
pub mod rng;
pub mod sparse;
pub mod stats;
pub mod tensor;

pub use sparse::SparseVec;
pub use tensor::Tensor;

/// Errors surfaced by numerical routines that can fail on valid inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// The QP solver failed to reach the requested tolerance within its
    /// iteration budget. Contains the residual that was achieved.
    QpNotConverged {
        /// KKT residual at the final iterate.
        residual: f64,
    },
    /// An input had a dimension that does not match its partner.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Observed length.
        got: usize,
    },
    /// An input that must be non-empty was empty.
    EmptyInput,
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::QpNotConverged { residual } => {
                write!(f, "QP solver did not converge (residual {residual:.3e})")
            }
            MathError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MathError::EmptyInput => write!(f, "input must be non-empty"),
        }
    }
}

impl std::error::Error for MathError {}
