//! Intra-client kernel parallelism policy.
//!
//! The federation already runs one actor thread per client; kernels layer
//! *data* parallelism underneath it — scoped threads over output-row
//! blocks (GEMM) or batch samples (conv). The thread count is a policy
//! decision made here, once, so every kernel agrees:
//!
//! * default **1** (serial) — edge devices in the paper are single-board
//!   computers, and cross-client actor threads already occupy the cores;
//! * `FEDKNOW_KERNEL_THREADS=N` opts a process in;
//! * [`with_threads`] scopes an override to a closure (used by the
//!   bit-identity property tests to sweep {1, 2, 4, 8}).
//!
//! Determinism contract: every kernel that consults [`threads`] must
//! produce **bit-identical** results for every thread count. GEMM
//! partitions output rows (each output element is computed by exactly one
//! thread, with an accumulation order that depends only on the k-blocking,
//! not on the partition); conv partitions batch samples and reduces
//! per-sample weight-gradient contributions in fixed sample order on the
//! calling thread. `crates/math/tests/properties.rs` and
//! `crates/nn/tests/properties.rs` pin this.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("FEDKNOW_KERNEL_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
            .min(64)
    })
}

/// Thread count kernels should use right now on this thread.
pub fn threads() -> usize {
    let o = OVERRIDE.with(|c| c.get());
    if o >= 1 {
        o
    } else {
        env_threads()
    }
}

/// Run `f` with the kernel thread count pinned to `n` on this thread.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be >= 1");
    let prev = OVERRIDE.with(|c| c.replace(n));
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _reset = Reset(prev);
    f()
}

/// Split `total` work units into at most `t` contiguous chunks, each a
/// multiple of `unit` (except possibly the last). Returns `(start, len)`
/// pairs covering `[0, total)` exactly; empty when `total == 0`.
pub fn chunks(total: usize, unit: usize, t: usize) -> Vec<(usize, usize)> {
    assert!(unit >= 1);
    if total == 0 {
        return Vec::new();
    }
    let t = t.max(1);
    let units = total.div_ceil(unit);
    let t = t.min(units);
    let per = units.div_ceil(t);
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    while start < total {
        let len = (per * unit).min(total - start);
        out.push((start, len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial() {
        assert!(threads() >= 1);
    }

    #[test]
    fn with_threads_scopes_and_restores() {
        let base = threads();
        let inner = with_threads(4, || {
            assert_eq!(threads(), 4);
            with_threads(2, threads)
        });
        assert_eq!(inner, 2);
        assert_eq!(threads(), base);
    }

    #[test]
    fn chunks_cover_exactly() {
        for &(total, unit, t) in &[
            (100usize, 8usize, 4usize),
            (7, 8, 4),
            (64, 8, 8),
            (65, 8, 8),
            (1, 1, 8),
            (0, 8, 4),
        ] {
            let cs = chunks(total, unit, t);
            let mut covered = 0;
            for (i, &(s, l)) in cs.iter().enumerate() {
                assert_eq!(s, covered, "chunks must be contiguous");
                assert!(l > 0);
                if i + 1 < cs.len() {
                    assert_eq!(l % unit, 0, "non-final chunk must be unit-aligned");
                }
                covered += l;
            }
            assert_eq!(covered, total);
            assert!(cs.len() <= t.max(1));
        }
    }
}
