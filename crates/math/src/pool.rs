//! Thread-local recycling pool for `f32` buffers.
//!
//! The training loop allocates the same handful of buffer sizes every
//! iteration — activations, gradients, packed GEMM panels. Rather than
//! thread an explicit arena through every layer signature, freed tensor
//! buffers are parked here (keyed by exact length) and handed back on the
//! next request of the same size, so the steady-state loop performs no
//! heap allocation at all (pinned by `crates/nn/tests/alloc_steady_state`).
//!
//! Per-thread by construction: no locks, no cross-thread traffic, and the
//! federation's per-client actor threads each recycle their own working
//! set. Capacity is bounded (`MAX_PER_CLASS` buffers per size class,
//! `MAX_POOL_BYTES` per thread); overflow simply drops the buffer, so the
//! pool degrades to plain allocation under adversarial size churn.
//!
//! `set_enabled(false)` turns the pool into a pass-through (every take is
//! a fresh allocation, every give a plain drop) — the property tests use
//! this to pin pooled results bit-identical to fresh-allocation results.

use std::cell::RefCell;
use std::collections::HashMap;

/// Max recycled buffers retained per size class.
const MAX_PER_CLASS: usize = 8;
/// Max bytes of recycled buffers retained per thread.
const MAX_POOL_BYTES: usize = 64 << 20;

#[derive(Default)]
struct Pool {
    classes: HashMap<usize, Vec<Vec<f32>>>,
    bytes: usize,
    disabled: bool,
    hits: u64,
    misses: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Counters for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from a recycled buffer.
    pub hits: u64,
    /// Takes that fell through to a fresh allocation.
    pub misses: u64,
    /// Bytes currently parked in this thread's pool.
    pub bytes: usize,
}

/// A buffer of exactly `len` elements with **unspecified contents** —
/// either recycled or freshly allocated. Callers must overwrite every
/// element they read.
pub fn take(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if !p.disabled {
            if let Some(list) = p.classes.get_mut(&len) {
                if let Some(buf) = list.pop() {
                    p.bytes -= len * 4;
                    p.hits += 1;
                    debug_assert_eq!(buf.len(), len);
                    return buf;
                }
            }
        }
        p.misses += 1;
        vec![0.0; len]
    })
}

/// A buffer of `len` elements, all set to `value`.
pub fn take_filled(len: usize, value: f32) -> Vec<f32> {
    let mut v = take(len);
    v.fill(value);
    v
}

/// A zeroed buffer of `len` elements.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    take_filled(len, 0.0)
}

/// Return a buffer to this thread's pool (dropped if the pool is full,
/// disabled, or the buffer is empty).
pub fn give(buf: Vec<f32>) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    // `try_with`: drops arriving during thread teardown (after the TLS
    // pool is destroyed) must not panic — the buffer just deallocates.
    let _ = POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.disabled || p.bytes + len * 4 > MAX_POOL_BYTES {
            return;
        }
        let list = p.classes.entry(len).or_default();
        if list.len() < MAX_PER_CLASS {
            list.push(buf);
            p.bytes += len * 4;
        }
    });
}

/// Enable or disable recycling on this thread. Returns the previous
/// setting. Disabling also drops everything currently parked.
pub fn set_enabled(on: bool) -> bool {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let was = !p.disabled;
        p.disabled = !on;
        if !on {
            p.classes.clear();
            p.bytes = 0;
        }
        was
    })
}

/// Whether recycling is enabled on this thread.
pub fn enabled() -> bool {
    POOL.with(|p| !p.borrow().disabled)
}

/// Hit/miss/occupancy counters for this thread.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            hits: p.hits,
            misses: p.misses,
            bytes: p.bytes,
        }
    })
}

/// Drop every buffer parked on this thread (keeps the enabled flag).
pub fn clear() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.classes.clear();
        p.bytes = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_exact_length() {
        clear();
        let before = stats();
        let mut v = take(1234);
        v[0] = 7.0;
        let ptr = v.as_ptr();
        give(v);
        let v2 = take(1234);
        assert_eq!(v2.len(), 1234);
        assert_eq!(v2.as_ptr(), ptr, "same-length take should recycle");
        let after = stats();
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn take_filled_overwrites_recycled_contents() {
        clear();
        let mut v = take_zeroed(64);
        v.fill(9.0);
        give(v);
        let v2 = take_filled(64, 1.5);
        assert!(v2.iter().all(|&x| x == 1.5));
        let v3 = take_zeroed(64);
        assert!(v3.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn disabled_pool_is_pass_through() {
        clear();
        let was = set_enabled(false);
        let v = take(99);
        give(v);
        assert_eq!(stats().bytes, 0, "disabled pool retains nothing");
        set_enabled(was);
    }

    #[test]
    fn class_capacity_is_bounded() {
        clear();
        for _ in 0..3 * MAX_PER_CLASS {
            give(vec![0.0; 50]);
        }
        assert!(stats().bytes <= MAX_PER_CLASS * 50 * 4);
    }

    #[test]
    fn zero_length_is_a_no_op() {
        let v = take(0);
        assert!(v.is_empty());
        give(v);
    }
}
