//! A dense, row-major `f32` tensor.
//!
//! The tensor is intentionally minimal: the neural-network substrate in
//! `fedknow-nn` performs manual layer-wise backpropagation, so only the
//! operations that appear in those forward/backward passes are provided.
//! All shape violations are programmer errors and panic with a descriptive
//! message; this mirrors the convention of mainstream array libraries.
//!
//! The GEMM entry points ([`Tensor::matmul`], [`Tensor::matmul_tn`],
//! [`Tensor::matmul_nt`]) account their work to the `flops.matmul*` /
//! `bytes.matmul*` perf counters (see [`crate::flops`]); higher-level
//! kernels that do their own accounting (conv2d's fused im2col+GEMM) call
//! the uncounted `*_raw` variants instead, so the counter namespaces stay
//! disjoint and summable.
//!
//! All three entry points lower onto the packed, cache-blocked GEMM in
//! [`crate::gemm`]; the `_tn`/`_nt` variants feed transposed pack sources
//! to the same kernel, so `a.matmul_tn(b)` is **bit-identical** to
//! `a.transpose2().matmul(b)` — the packed panels are the same bytes.
//!
//! Buffers are recycled through [`crate::pool`]: every tensor returns its
//! storage to a thread-local free list on drop, and constructors draw
//! from it, keeping the steady-state training loop allocation-free. The
//! shape is stored inline (rank ≤ 4) for the same reason.

use crate::pool;
use fedknow_obs::PerfCounter;

static PERF_MATMUL: PerfCounter = PerfCounter::new("matmul");
static PERF_MATMUL_TN: PerfCounter = PerfCounter::new("matmul_tn");
static PERF_MATMUL_NT: PerfCounter = PerfCounter::new("matmul_nt");

/// Maximum tensor rank (batch × channel × height × width covers the zoo).
pub const MAX_RANK: usize = 4;

/// Inline shape: rank ≤ [`MAX_RANK`], no heap allocation.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    #[inline]
    fn from_slice(shape: &[usize]) -> Self {
        assert!(
            shape.len() <= MAX_RANK,
            "tensor rank {} exceeds MAX_RANK {MAX_RANK}",
            shape.len()
        );
        let mut dims = [0usize; MAX_RANK];
        dims[..shape.len()].copy_from_slice(shape);
        Self {
            dims,
            rank: shape.len() as u8,
        }
    }

    #[inline]
    fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    #[inline]
    fn count(&self) -> usize {
        self.as_slice().iter().product()
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Dense row-major tensor of `f32` values.
///
/// Shapes are rank ≤ 4; in practice the workspace uses rank 1 (parameter
/// vectors), rank 2 (`[batch, features]`) and rank 4
/// (`[batch, channels, height, width]`).
#[derive(Debug)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = pool::take(self.data.len());
        data.copy_from_slice(&self.data);
        Self {
            data,
            shape: self.shape,
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        pool::give(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Create a tensor from raw data and a shape. Panics if the element
    /// count of `shape` does not match `data.len()`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {shape:?} implies {n} elements, data has {}",
            data.len()
        );
        Self {
            data,
            shape: Shape::from_slice(shape),
        }
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let s = Shape::from_slice(shape);
        Self {
            data: pool::take_zeroed(s.count()),
            shape: s,
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let s = Shape::from_slice(shape);
        Self {
            data: pool::take_filled(s.count(), value),
            shape: s,
        }
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "reshape to {shape:?} changes element count"
        );
        self.shape = Shape::from_slice(shape);
        self
    }

    /// Element at a rank-2 index.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.rank, 2);
        self.data[i * self.shape.dims[1] + j]
    }

    fn from_pooled(data: Vec<f32>, shape: &[usize]) -> Self {
        debug_assert_eq!(data.len(), shape.iter().product::<usize>());
        Self {
            data,
            shape: Shape::from_slice(shape),
        }
    }

    /// Rank-2 matrix multiply: `self [m,k] × other [k,n] → [m,n]`.
    ///
    /// Lowers onto the cache-blocked, packed-panel GEMM in
    /// [`crate::gemm`] (AVX-512/AVX2 microkernels with a portable
    /// fallback, runtime-detected).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let out = self.matmul_raw(other);
        let c = crate::flops::matmul(self.shape.dims[0], self.shape.dims[1], other.shape.dims[1]);
        PERF_MATMUL.op(c.flops, c.bytes);
        out
    }

    /// [`matmul`](Self::matmul) without perf accounting, for callers
    /// (conv2d) that attribute the work to their own kernel counters.
    pub fn matmul_raw(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank, 2, "matmul lhs must be rank-2");
        assert_eq!(other.shape.rank, 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape.dims[0], self.shape.dims[1]);
        let (k2, n) = (other.shape.dims[0], other.shape.dims[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let mut out = pool::take(m * n);
        crate::gemm::gemm(
            m,
            k,
            n,
            &crate::gemm::DenseA {
                data: &self.data,
                k,
            },
            &crate::gemm::DenseB {
                data: &other.data,
                n,
            },
            &mut out,
        );
        Tensor::from_pooled(out, &[m, n])
    }

    /// `selfᵀ × other`: `self [k,m]`, `other [k,n]` → `[m,n]`, without
    /// materialising the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let out = self.matmul_tn_raw(other);
        let c = crate::flops::matmul(self.shape.dims[1], self.shape.dims[0], other.shape.dims[1]);
        PERF_MATMUL_TN.op(c.flops, c.bytes);
        out
    }

    /// [`matmul_tn`](Self::matmul_tn) without perf accounting.
    pub fn matmul_tn_raw(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank, 2);
        assert_eq!(other.shape.rank, 2);
        let (k, m) = (self.shape.dims[0], self.shape.dims[1]);
        let (k2, n) = (other.shape.dims[0], other.shape.dims[1]);
        assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");
        let mut out = pool::take(m * n);
        crate::gemm::gemm(
            m,
            k,
            n,
            &crate::gemm::DenseATrans {
                data: &self.data,
                m,
            },
            &crate::gemm::DenseB {
                data: &other.data,
                n,
            },
            &mut out,
        );
        Tensor::from_pooled(out, &[m, n])
    }

    /// `self × otherᵀ`: `self [m,k]`, `other [n,k]` → `[m,n]`, without
    /// materialising the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let out = self.matmul_nt_raw(other);
        let c = crate::flops::matmul(self.shape.dims[0], self.shape.dims[1], other.shape.dims[0]);
        PERF_MATMUL_NT.op(c.flops, c.bytes);
        out
    }

    /// [`matmul_nt`](Self::matmul_nt) without perf accounting.
    pub fn matmul_nt_raw(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank, 2);
        assert_eq!(other.shape.rank, 2);
        let (m, k) = (self.shape.dims[0], self.shape.dims[1]);
        let (n, k2) = (other.shape.dims[0], other.shape.dims[1]);
        assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");
        let mut out = pool::take(m * n);
        crate::gemm::gemm(
            m,
            k,
            n,
            &crate::gemm::DenseA {
                data: &self.data,
                k,
            },
            &crate::gemm::DenseBTrans {
                data: &other.data,
                k,
            },
            &mut out,
        );
        Tensor::from_pooled(out, &[m, n])
    }

    /// Rank-2 transpose.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank, 2);
        let (m, n) = (self.shape.dims[0], self.shape.dims[1]);
        let mut out = pool::take(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_pooled(out, &[n, m])
    }

    /// Elementwise in-place addition. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise in-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Elementwise map, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = pool::take(self.data.len());
        for (o, &x) in out.iter_mut().zip(&self.data) {
            *o = f(x);
        }
        Tensor {
            data: out,
            shape: self.shape,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stable).
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape.rank, 2, "softmax_rows needs rank-2 input");
        let (m, n) = (self.shape.dims[0], self.shape.dims[1]);
        let mut out = pool::take(m * n);
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let o = &mut out[i * n..(i + 1) * n];
            let mut z = 0.0;
            for (dst, &x) in o.iter_mut().zip(row) {
                let e = (x - max).exp();
                *dst = e;
                z += e;
            }
            let inv = 1.0 / z;
            for dst in o.iter_mut() {
                *dst *= inv;
            }
        }
        Tensor {
            data: out,
            shape: self.shape,
        }
    }

    /// Index of the maximum element per row of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank, 2);
        let (m, n) = (self.shape.dims[0], self.shape.dims[1]);
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` over raw slices.
#[inline]
pub fn axpy_slice(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm_slice(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let b = Tensor::from_vec((0..8).map(|x| (x as f32) * 0.5).collect(), &[4, 2]);
        let via_t = a.transpose2().matmul(&b);
        let direct = a.matmul_tn(&b);
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 - 3.0).collect(), &[4, 3]);
        let via_t = a.matmul(&b.transpose2());
        let direct = a.matmul_nt(&b);
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_equivalences_hold_at_packed_tile_sizes() {
        // Shapes past the register tiles, so the packed panels (not a
        // small-case path) carry the equivalence.
        let (mr, nr) = crate::gemm::tile_params();
        let (k, m, n) = (3 * mr + 1, 2 * mr + 3, 2 * nr + 5);
        let a = Tensor::from_vec(
            (0..k * m).map(|x| (x as f32 * 0.37).sin()).collect(),
            &[k, m],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|x| (x as f32 * 0.11).cos()).collect(),
            &[k, n],
        );
        assert_eq!(a.transpose2().matmul(&b), a.matmul_tn(&b));
        let c = Tensor::from_vec(
            (0..n * k).map(|x| (x as f32 * 0.23).sin()).collect(),
            &[n, k],
        );
        assert_eq!(
            a.transpose2().matmul(&c.transpose2()),
            a.transpose2().matmul_nt(&c)
        );
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0], &[2, 3]);
        let s = t.softmax_rows();
        for i in 0..2 {
            let row: f32 = (0..3).map(|j| s.at2(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-5, "row {i} sums to {row}");
        }
        assert!(s.at2(0, 2) > s.at2(0, 1));
        assert!(s.at2(1, 2) > 0.99, "large logit should dominate");
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 5.0, -2.0, 3.0], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn from_vec_rejects_rank_over_four() {
        let _ = Tensor::from_vec(vec![1.0; 32], &[2, 2, 2, 2, 2]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(&[4], 1.0);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn recycled_buffers_do_not_leak_values() {
        // A dropped tensor's buffer may be recycled; constructors must
        // fully initialise it.
        let t = Tensor::full(&[32], 7.5);
        drop(t);
        let z = Tensor::zeros(&[32]);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let m = Tensor::full(&[32], 2.0).map(|x| x + 1.0);
        assert!(m.data().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn into_vec_keeps_buffer_out_of_pool() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let v = t.into_vec();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }
}
