//! A dense, row-major `f32` tensor.
//!
//! The tensor is intentionally minimal: the neural-network substrate in
//! `fedknow-nn` performs manual layer-wise backpropagation, so only the
//! operations that appear in those forward/backward passes are provided.
//! All shape violations are programmer errors and panic with a descriptive
//! message; this mirrors the convention of mainstream array libraries.
//!
//! The GEMM entry points ([`Tensor::matmul`], [`Tensor::matmul_tn`],
//! [`Tensor::matmul_nt`]) account their work to the `flops.matmul*` /
//! `bytes.matmul*` perf counters (see [`crate::flops`]); higher-level
//! kernels that do their own accounting (conv2d's im2col+GEMM) call the
//! uncounted `*_raw` variants instead, so the counter namespaces stay
//! disjoint and summable.

use fedknow_obs::PerfCounter;

static PERF_MATMUL: PerfCounter = PerfCounter::new("matmul");
static PERF_MATMUL_TN: PerfCounter = PerfCounter::new("matmul_tn");
static PERF_MATMUL_NT: PerfCounter = PerfCounter::new("matmul_nt");

/// Dense row-major tensor of `f32` values.
///
/// Shapes are arbitrary-rank, but in practice the workspace uses rank 1
/// (parameter vectors), rank 2 (`[batch, features]`) and rank 4
/// (`[batch, channels, height, width]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Create a tensor from raw data and a shape. Panics if the element
    /// count of `shape` does not match `data.len()`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {shape:?} implies {n} elements, data has {}",
            data.len()
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "reshape to {shape:?} changes element count"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element at a rank-2 index.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Rank-2 matrix multiply: `self [m,k] × other [k,n] → [m,n]`.
    ///
    /// Straightforward ikj-ordered GEMM; the k-loop is in the middle so the
    /// innermost loop streams both the output row and the `other` row,
    /// which auto-vectorises well (per the Rust Performance Book guidance
    /// on keeping hot inner loops branch-free and slice-based).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let out = self.matmul_raw(other);
        let c = crate::flops::matmul(self.shape[0], self.shape[1], other.shape[1]);
        PERF_MATMUL.op(c.flops, c.bytes);
        out
    }

    /// [`matmul`](Self::matmul) without perf accounting, for callers
    /// (conv2d) that attribute the work to their own kernel counters.
    pub fn matmul_raw(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// `selfᵀ × other`: `self [k,m]`, `other [k,n]` → `[m,n]`, without
    /// materialising the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let out = self.matmul_tn_raw(other);
        let c = crate::flops::matmul(self.shape[1], self.shape[0], other.shape[1]);
        PERF_MATMUL_TN.op(c.flops, c.bytes);
        out
    }

    /// [`matmul_tn`](Self::matmul_tn) without perf accounting.
    pub fn matmul_tn_raw(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// `self × otherᵀ`: `self [m,k]`, `other [n,k]` → `[m,n]`, without
    /// materialising the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let out = self.matmul_nt_raw(other);
        let c = crate::flops::matmul(self.shape[0], self.shape[1], other.shape[0]);
        PERF_MATMUL_NT.op(c.flops, c.bytes);
        out
    }

    /// [`matmul_nt`](Self::matmul_nt) without perf accounting.
    pub fn matmul_nt_raw(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        assert_eq!(other.shape.len(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                out[i * n + j] = dot(a_row, b_row);
            }
        }
        Tensor {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Rank-2 transpose.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            data: out,
            shape: vec![n, m],
        }
    }

    /// Elementwise in-place addition. Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise in-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Elementwise map, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stable).
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "softmax_rows needs rank-2 input");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let o = &mut out[i * n..(i + 1) * n];
            let mut z = 0.0;
            for (dst, &x) in o.iter_mut().zip(row) {
                let e = (x - max).exp();
                *dst = e;
                z += e;
            }
            let inv = 1.0 / z;
            for dst in o.iter_mut() {
                *dst *= inv;
            }
        }
        Tensor {
            data: out,
            shape: self.shape.clone(),
        }
    }

    /// Index of the maximum element per row of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` over raw slices.
#[inline]
pub fn axpy_slice(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm_slice(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let b = Tensor::from_vec((0..8).map(|x| (x as f32) * 0.5).collect(), &[4, 2]);
        let via_t = a.transpose2().matmul(&b);
        let direct = a.matmul_tn(&b);
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 - 3.0).collect(), &[4, 3]);
        let via_t = a.matmul(&b.transpose2());
        let direct = a.matmul_nt(&b);
        assert_eq!(via_t, direct);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0], &[2, 3]);
        let s = t.softmax_rows();
        for i in 0..2 {
            let row: f32 = (0..3).map(|j| s.at2(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-5, "row {i} sums to {row}");
        }
        assert!(s.at2(0, 2) > s.at2(0, 1));
        assert!(s.at2(1, 2) > 0.99, "large logit should dominate");
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 5.0, -2.0, 3.0], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::full(&[4], 1.0);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0, 6.0]);
    }
}
