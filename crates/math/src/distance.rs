//! Gradient-distance metrics for signature-task selection.
//!
//! The gradient restorer (paper §III-C) picks the `k` past tasks whose
//! gradients are *most dissimilar* from the current task's gradient — the
//! paper suggests the Wasserstein distance between gradients ("e.g.
//! Wasserstein distance"), with the intuition that the largest included
//! angles mark the tasks most damaged by an unconstrained update.
//!
//! Three metrics are provided so the selection rule can be ablated:
//! 1-D [`wasserstein_1d`] over the empirical distribution of gradient
//! components (the paper's choice), [`cosine_distance`] (1 − cosine, a
//! direct angle proxy), and [`euclidean`].

use fedknow_obs::PerfCounter;

/// Work accounting for the sort-dominated Wasserstein kernel, modelled
/// by [`crate::flops::wasserstein`].
static PERF_WASSERSTEIN: PerfCounter = PerfCounter::new("wasserstein");

/// Which metric to use when ranking gradient dissimilarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DistanceMetric {
    /// 1-D Wasserstein distance between the sorted component distributions
    /// (the paper's suggested metric).
    Wasserstein,
    /// `1 − cos θ` between the gradients; monotone in the included angle.
    Cosine,
    /// Plain Euclidean distance.
    Euclidean,
}

/// Compute the configured distance between two equal-length gradients.
///
/// Panics if the lengths differ (gradient vectors in one model always
/// agree in length; a mismatch is a programming error).
pub fn gradient_distance(metric: DistanceMetric, a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "gradient lengths differ");
    match metric {
        DistanceMetric::Wasserstein => wasserstein_1d(a, b),
        DistanceMetric::Cosine => cosine_distance(a, b),
        DistanceMetric::Euclidean => euclidean(a, b),
    }
}

/// 1-D Wasserstein (earth mover's) distance between the empirical
/// distributions of the two slices: mean absolute difference of the
/// sorted samples. Both slices must have equal length.
///
/// Non-finite samples have no place on the real line the transport plan
/// lives on, so any NaN or infinity makes the distance `f64::INFINITY`
/// ("maximally dissimilar") rather than silently mis-sorting — the old
/// `partial_cmp(..).unwrap_or(Equal)` comparator left NaN wherever the
/// sort happened to put it, corrupting every pairing after it.
pub fn wasserstein_1d(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "wasserstein_1d requires equal lengths");
    if a.is_empty() {
        return 0.0;
    }
    let c = crate::flops::wasserstein(a.len());
    PERF_WASSERSTEIN.op(c.flops, c.bytes);
    if !all_finite(a) || !all_finite(b) {
        return f64::INFINITY;
    }
    let mut sa: Vec<f32> = a.to_vec();
    let mut sb: Vec<f32> = b.to_vec();
    sa.sort_unstable_by(f32::total_cmp);
    sb.sort_unstable_by(f32::total_cmp);
    let total: f64 = sa
        .iter()
        .zip(&sb)
        .map(|(&x, &y)| ((x - y).abs()) as f64)
        .sum();
    total / a.len() as f64
}

fn all_finite(v: &[f32]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// `1 − cosine similarity`. Ranges over `[0, 2]`; `0` for parallel,
/// `1` for orthogonal, `2` for anti-parallel. Zero vectors are treated as
/// orthogonal to everything (distance 1).
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_distance requires equal lengths");
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        dot += x as f64 * y as f64;
        na += (x as f64) * (x as f64);
        nb += (y as f64) * (y as f64);
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na.sqrt() * nb.sqrt())
}

/// Euclidean distance.
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Rank `candidates` by descending distance from `reference` and return the
/// indices of the `k` most dissimilar ones (the paper's signature-task
/// selection rule). Stable for ties (lower index first). `k` is clamped to
/// the candidate count.
pub fn most_dissimilar(
    metric: DistanceMetric,
    reference: &[f32],
    candidates: &[Vec<f32>],
    k: usize,
) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        // A NaN score (non-finite gradients under Cosine/Euclidean) ranks
        // as maximally dissimilar, matching `wasserstein_1d`'s convention
        // for non-finite inputs, instead of corrupting the sort order.
        .map(|(i, c)| {
            let d = gradient_distance(metric, reference, c);
            (i, if d.is_nan() { f64::INFINITY } else { d })
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored
        .into_iter()
        .take(k.min(candidates.len()))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wasserstein_of_identical_is_zero() {
        let a = vec![3.0, -1.0, 2.0];
        assert_eq!(wasserstein_1d(&a, &a), 0.0);
    }

    #[test]
    fn wasserstein_is_shift_distance_for_shifted_samples() {
        let a = vec![0.0, 1.0, 2.0];
        let b = vec![1.0, 2.0, 3.0];
        assert!((wasserstein_1d(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wasserstein_is_symmetric_and_permutation_invariant() {
        let a = vec![5.0, -2.0, 0.5, 9.0];
        let b = vec![1.0, 1.0, -3.0, 2.0];
        let ab = wasserstein_1d(&a, &b);
        let ba = wasserstein_1d(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        let a_perm = vec![9.0, 0.5, -2.0, 5.0];
        assert!((wasserstein_1d(&a_perm, &b) - ab).abs() < 1e-12);
    }

    #[test]
    fn cosine_distance_extremes() {
        let a = vec![1.0, 0.0];
        assert!(cosine_distance(&a, &[2.0, 0.0]).abs() < 1e-9);
        assert!((cosine_distance(&a, &[0.0, 3.0]) - 1.0).abs() < 1e-9);
        assert!((cosine_distance(&a, &[-1.0, 0.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_vector_cosine_is_one() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn most_dissimilar_ranks_by_distance() {
        let reference = vec![1.0, 0.0];
        let candidates = vec![
            vec![1.0, 0.0],  // identical
            vec![-1.0, 0.0], // opposite
            vec![0.0, 1.0],  // orthogonal
        ];
        let top2 = most_dissimilar(DistanceMetric::Cosine, &reference, &candidates, 2);
        assert_eq!(top2, vec![1, 2]);
    }

    #[test]
    fn most_dissimilar_clamps_k() {
        let reference = vec![1.0];
        let candidates = vec![vec![0.0]];
        let all = most_dissimilar(DistanceMetric::Euclidean, &reference, &candidates, 10);
        assert_eq!(all, vec![0]);
    }

    #[test]
    fn euclidean_matches_hand_value() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn wasserstein_rejects_non_finite_inputs_as_infinitely_far() {
        // Regression: the old NaN-tolerant comparator left NaN stranded
        // mid-array, pairing finite samples against the wrong partners —
        // W(a, b) could silently *shrink* when a NaN appeared.
        let clean = vec![0.0f32, 1.0, 2.0];
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let dirty = vec![0.0f32, poison, 2.0];
            assert_eq!(wasserstein_1d(&dirty, &clean), f64::INFINITY);
            assert_eq!(wasserstein_1d(&clean, &dirty), f64::INFINITY);
            assert_eq!(wasserstein_1d(&dirty, &dirty), f64::INFINITY);
        }
        // Finite inputs are unaffected by the guard.
        assert!((wasserstein_1d(&clean, &clean)).abs() < 1e-12);
    }

    #[test]
    fn most_dissimilar_ranks_nan_candidates_first_deterministically() {
        let reference = vec![1.0f32, 0.0];
        let candidates = vec![
            vec![1.0, 0.0],      // distance 0
            vec![f32::NAN, 0.0], // NaN score → +∞
            vec![-1.0, 0.0],     // distance 2
        ];
        let order = most_dissimilar(DistanceMetric::Cosine, &reference, &candidates, 3);
        assert_eq!(order, vec![1, 2, 0]);
    }
}
