//! Non-negative quadratic programming for gradient integration.
//!
//! FedKNOW's gradient integrator (paper §III-D) rotates the current task's
//! gradient `g` so it keeps an acute angle with every signature-task
//! gradient, while moving as little as possible:
//!
//! ```text
//! min_{g'}  ½ ‖g' − g‖²      s.t.  G g' ≥ 0          (paper Eq. 3)
//! ```
//!
//! where `G` stacks the `k` signature gradients as rows. Its dual
//! (paper Eq. 4) is a small non-negative QP in `v ∈ ℝ^k`:
//!
//! ```text
//! min_v  ½ vᵀ(GGᵀ)v + (Gg)ᵀv    s.t.  v ≥ 0
//! ```
//!
//! with the primal recovered as `g' = Gᵀv + g` (paper Eq. 5). Since `k` is
//! tiny (≤ 20 in the paper) while the parameter dimension is large, solving
//! in the dual is the whole point: the expensive part is forming the `k×k`
//! Gram matrix, after which the QP itself is microseconds.
//!
//! The solver is projected gradient descent with an exact Lipschitz step
//! (1/λ_max of the Gram matrix, bounded by its trace) and a KKT-residual
//! stopping rule — simple, allocation-free per iteration, and exact enough
//! for the acute-angle guarantee to hold to float precision.

use crate::MathError;
use fedknow_obs::PerfCounter;

/// Work accounting for the whole integrate path (screen + dual solve +
/// primal recovery), modelled by [`crate::flops::qp_screen`] /
/// [`crate::flops::qp_solve`].
static PERF_QP: PerfCounter = PerfCounter::new("qp");

/// Configuration for the non-negative QP solver.
#[derive(Debug, Clone)]
pub struct QpConfig {
    /// Maximum projected-gradient iterations.
    pub max_iters: usize,
    /// KKT residual tolerance for declaring convergence.
    pub tol: f64,
    /// Margin added to the constraint (GEM's `margin`): solve against
    /// `Gg' ≥ margin·‖g_i‖` instead of `≥ 0`, which makes the rotated
    /// gradient strictly decrease past-task losses. `0.0` reproduces the
    /// paper's formulation exactly.
    pub margin: f64,
}

impl Default for QpConfig {
    fn default() -> Self {
        Self {
            max_iters: 2_000,
            tol: 1e-7,
            margin: 0.0,
        }
    }
}

/// Result of a gradient-integration solve.
#[derive(Debug, Clone)]
pub struct Integrated {
    /// The rotated gradient `g'` (same length as the input gradient).
    pub gradient: Vec<f32>,
    /// Dual variables `v ≥ 0`, one per constraint gradient.
    pub dual: Vec<f64>,
    /// Whether the input gradient already satisfied all constraints
    /// (in which case `gradient` is a copy of the input).
    pub already_feasible: bool,
    /// Projected-gradient iterations used (0 when already feasible).
    pub iterations: usize,
}

/// Solve `min ½‖g'−g‖²  s.t.  ⟨g_i, g'⟩ ≥ 0 ∀i` via the dual QP.
///
/// `constraints` holds the signature-task gradients `g_1..g_k`; each must
/// have the same length as `g`. Returns the rotated gradient; when `g`
/// already has an acute angle with every constraint the input is returned
/// unchanged (fast path, no QP solve).
///
/// ```
/// use fedknow_math::qp::{integrate_gradient, QpConfig};
/// // The current gradient points +x; a signature gradient points −x.
/// let g = vec![1.0, 0.0];
/// let signature = vec![vec![-1.0, 0.0]];
/// let r = integrate_gradient(&g, &signature, &QpConfig::default()).unwrap();
/// // The rotated gradient no longer conflicts with the signature task.
/// let dot: f32 = r.gradient.iter().zip(&signature[0]).map(|(a, b)| a * b).sum();
/// assert!(dot >= -1e-5);
/// ```
pub fn integrate_gradient(
    g: &[f32],
    constraints: &[Vec<f32>],
    config: &QpConfig,
) -> Result<Integrated, MathError> {
    if g.is_empty() {
        return Err(MathError::EmptyInput);
    }
    for c in constraints {
        if c.len() != g.len() {
            return Err(MathError::DimensionMismatch {
                expected: g.len(),
                got: c.len(),
            });
        }
    }
    let k = constraints.len();
    if k == 0 {
        return Ok(Integrated {
            gradient: g.to_vec(),
            dual: vec![],
            already_feasible: true,
            iterations: 0,
        });
    }

    // Gg and the feasibility fast path.
    let gg: Vec<f64> = constraints
        .iter()
        .map(|c| c.iter().zip(g).map(|(&a, &b)| a as f64 * b as f64).sum())
        .collect();
    let margins: Vec<f64> = constraints
        .iter()
        .map(|c| {
            let n: f64 = c
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                .sqrt();
            config.margin * n
        })
        .collect();
    if gg.iter().zip(&margins).all(|(&d, &m)| d >= m) {
        let c = crate::flops::qp_screen(k, g.len());
        PERF_QP.op(c.flops, c.bytes);
        return Ok(Integrated {
            gradient: g.to_vec(),
            dual: vec![0.0; k],
            already_feasible: true,
            iterations: 0,
        });
    }

    // Gram matrix GGᵀ (k×k, double precision for stability).
    let mut gram = vec![0.0f64; k * k];
    for i in 0..k {
        for j in i..k {
            let d: f64 = constraints[i]
                .iter()
                .zip(&constraints[j])
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum();
            gram[i * k + j] = d;
            gram[j * k + i] = d;
        }
    }

    let (dual, iterations) = solve_nonneg_qp(&gram, &gg, &margins, k, config)?;

    // g' = Gᵀ v + g  (paper Eq. 5).
    let mut out: Vec<f32> = g.to_vec();
    for (vi, c) in dual.iter().zip(constraints) {
        if *vi != 0.0 {
            let a = *vi as f32;
            for (o, &ci) in out.iter_mut().zip(c) {
                *o += a * ci;
            }
        }
    }
    let c =
        crate::flops::qp_screen(k, g.len()).plus(crate::flops::qp_solve(k, g.len(), iterations));
    PERF_QP.op(c.flops, c.bytes);
    Ok(Integrated {
        gradient: out,
        dual,
        already_feasible: false,
        iterations,
    })
}

/// Projected gradient descent on `½vᵀQv + qᵀv − marginsᵀv, v ≥ 0`.
///
/// Returns the dual solution and the iteration count. The margin enters the
/// dual linearly (a shifted constraint `Gg' ≥ m` dualises to `q = Gg − m`).
fn solve_nonneg_qp(
    gram: &[f64],
    gg: &[f64],
    margins: &[f64],
    k: usize,
    config: &QpConfig,
) -> Result<(Vec<f64>, usize), MathError> {
    let q: Vec<f64> = gg.iter().zip(margins).map(|(&d, &m)| d - m).collect();
    // Lipschitz constant of the gradient: λ_max(Q) ≤ trace(Q). The Gram
    // matrix is PSD so the trace bound is valid; a degenerate all-zero
    // Gram (all constraint gradients zero) makes the problem linear and
    // any v works — return zeros.
    let trace: f64 = (0..k).map(|i| gram[i * k + i]).sum();
    if trace <= 0.0 {
        return Ok((vec![0.0; k], 0));
    }
    let step = 1.0 / trace;

    let mut v = vec![0.0f64; k];
    let mut grad = vec![0.0f64; k];
    for it in 0..config.max_iters {
        // grad = Qv + q
        for i in 0..k {
            let row = &gram[i * k..(i + 1) * k];
            grad[i] = q[i] + row.iter().zip(&v).map(|(&a, &b)| a * b).sum::<f64>();
        }
        // KKT residual for v ≥ 0: at a solution, grad_i ≥ 0 where v_i = 0
        // and grad_i = 0 where v_i > 0.
        let residual = (0..k)
            .map(|i| {
                if v[i] > 0.0 {
                    grad[i].abs()
                } else {
                    (-grad[i]).max(0.0)
                }
            })
            .fold(0.0f64, f64::max);
        if residual <= config.tol * (1.0 + trace) {
            return Ok((v, it));
        }
        for i in 0..k {
            v[i] = (v[i] - step * grad[i]).max(0.0);
        }
    }
    // Re-check the residual after the final update; accept if close.
    for i in 0..k {
        let row = &gram[i * k..(i + 1) * k];
        grad[i] = q[i] + row.iter().zip(&v).map(|(&a, &b)| a * b).sum::<f64>();
    }
    let residual = (0..k)
        .map(|i| {
            if v[i] > 0.0 {
                grad[i].abs()
            } else {
                (-grad[i]).max(0.0)
            }
        })
        .fold(0.0f64, f64::max);
    if residual <= config.tol * (1.0 + trace) * 100.0 {
        Ok((v, config.max_iters))
    } else {
        Err(MathError::QpNotConverged { residual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dotf(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn feasible_gradient_passes_through() {
        let g = vec![1.0, 0.0];
        let cons = vec![vec![1.0, 1.0], vec![1.0, -1.0]];
        let r = integrate_gradient(&g, &cons, &QpConfig::default()).unwrap();
        assert!(r.already_feasible);
        assert_eq!(r.gradient, g);
    }

    #[test]
    fn obtuse_constraint_gets_rotated_to_acute() {
        // g points +x, constraint points -x: maximally conflicting.
        let g = vec![1.0, 0.0];
        let cons = vec![vec![-1.0, 0.0]];
        let r = integrate_gradient(&g, &cons, &QpConfig::default()).unwrap();
        assert!(!r.already_feasible);
        let d = dotf(&cons[0], &r.gradient);
        assert!(d >= -1e-5, "constraint violated: {d}");
        // Minimal rotation projects g onto the constraint boundary → ~0.
        assert!(r.gradient[0].abs() < 1e-4);
    }

    #[test]
    fn rotation_is_minimal_projection() {
        // g = (1, -1); constraint g1 = (0, 1). Projection onto {y ≥ 0}
        // is (1, 0).
        let g = vec![1.0, -1.0];
        let cons = vec![vec![0.0, 1.0]];
        let r = integrate_gradient(&g, &cons, &QpConfig::default()).unwrap();
        assert!((r.gradient[0] - 1.0).abs() < 1e-5);
        assert!(r.gradient[1].abs() < 1e-5);
    }

    #[test]
    fn all_constraints_acute_after_solve() {
        // Random-ish fixed set with several conflicts.
        let g = vec![1.0, -2.0, 0.5, 3.0];
        let cons = vec![
            vec![-1.0, 0.5, 0.0, -2.0],
            vec![0.0, 1.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![-0.3, -0.3, -0.3, -0.3],
        ];
        let r = integrate_gradient(&g, &cons, &QpConfig::default()).unwrap();
        for (i, c) in cons.iter().enumerate() {
            let d = dotf(c, &r.gradient);
            assert!(d >= -1e-4, "constraint {i} violated: {d}");
        }
        // Dual feasibility.
        assert!(r.dual.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn margin_forces_strict_descent() {
        let g = vec![1.0, 0.0];
        let cons = vec![vec![0.0, 1.0]]; // orthogonal: feasible at margin 0
        let cfg = QpConfig {
            margin: 0.1,
            ..Default::default()
        };
        let r = integrate_gradient(&g, &cons, &cfg).unwrap();
        assert!(!r.already_feasible);
        let d = dotf(&cons[0], &r.gradient);
        assert!(d >= 0.1 - 1e-4, "margin not met: {d}");
    }

    #[test]
    fn empty_constraint_set_is_identity() {
        let g = vec![1.0, 2.0];
        let r = integrate_gradient(&g, &[], &QpConfig::default()).unwrap();
        assert!(r.already_feasible);
        assert_eq!(r.gradient, g);
    }

    #[test]
    fn empty_gradient_is_error() {
        let r = integrate_gradient(&[], &[], &QpConfig::default());
        assert_eq!(r.unwrap_err(), MathError::EmptyInput);
    }

    #[test]
    fn zero_constraint_gradients_are_harmless() {
        let g = vec![1.0, 0.0];
        let cons = vec![vec![0.0, 0.0]];
        let r = integrate_gradient(&g, &cons, &QpConfig::default()).unwrap();
        assert_eq!(r.gradient, g);
    }

    #[test]
    fn solution_never_moves_further_than_necessary() {
        // The integrated gradient must satisfy ‖g' − g‖ ≤ ‖g‖ + ‖g'‖
        // trivially, but more meaningfully: for one constraint, the
        // displacement is exactly the negative part of the projection.
        let g = vec![3.0, 4.0];
        let c = vec![0.0, -1.0]; // ⟨c, g⟩ = -4 < 0
        let r = integrate_gradient(&g, std::slice::from_ref(&c), &QpConfig::default()).unwrap();
        // Projection onto {⟨c,·⟩ ≥ 0} = {y ≤ 0}: (3, 0).
        assert!((r.gradient[0] - 3.0).abs() < 1e-4);
        assert!(r.gradient[1].abs() < 1e-4);
        let disp: f32 = r
            .gradient
            .iter()
            .zip(&g)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!((disp - 4.0).abs() < 1e-3);
    }
}
