//! Cache-blocked, register-tiled, packed-panel f32 GEMM.
//!
//! BLIS-style structure: the k dimension is split into `KC`-deep slabs,
//! columns into `NC`-wide panels, rows into `MC`-tall blocks. Within a
//! block, B is packed into `NR`-wide column strips and A into `MR`-tall
//! row strips (both zero-padded to full tile width), and an MR×NR
//! register microkernel runs over every tile — edge tiles included, via a
//! small scratch tile, so no shape falls off the fast path.
//!
//! Three microkernels are provided and selected once per process by
//! runtime CPU detection (overridable with `FEDKNOW_KERNEL_ISA=
//! avx512|avx2|scalar` for differential testing):
//!
//! | ISA            | MR×NR | registers                         |
//! |----------------|-------|-----------------------------------|
//! | AVX-512F       | 8×48  | 24 zmm accumulators + 3 B + 1 A   |
//! | AVX2+FMA       | 6×16  | 12 ymm accumulators + 2 B + 1 A   |
//! | scalar         | 4×16  | autovectorized f32 arrays         |
//!
//! The left and right operands are abstracted as [`APanels`]/[`BPanels`]
//! pack sources, so `fedknow-nn`'s fused conv2d can feed im2col *patch
//! panels* straight into the same blocked kernel without materializing
//! the full column matrix.
//!
//! ## Determinism
//!
//! For a fixed ISA, every output element `out[i][j]` is the sum of
//! `a[i][p]·b[p][j]` accumulated in strictly ascending `p` order (KC
//! slabs in order, FMA chain within a slab), regardless of which row
//! strip, column panel, or thread computed it. Row-partitioned
//! parallelism therefore produces **bit-identical** results to the serial
//! path for every thread count — each output element is written by
//! exactly one thread executing exactly the serial instruction sequence.
//! `crates/nn/tests/determinism.rs` pins this for {1, 2, 4, 8} threads.

use crate::{parallel, pool};

/// Depth of one packed k-slab.
pub const KC: usize = 256;
/// Rows per packed A block.
pub const MC: usize = 64;
/// Columns per packed B panel.
pub const NC: usize = 960;

/// Pack source for the left operand (logical `[m, k]`, row-major tiles).
///
/// `pack` must fill `dst` with rows `[i0, i0+mc)` × cols `[k0, k0+kc)`
/// laid out as `MR`-row strips, k-major within a strip:
/// `dst[s·(kc·mr) + p·mr + r] = A[i0 + s·mr + r][k0 + p]`,
/// with rows past the block's end zero-filled.
pub trait APanels: Sync {
    /// Pack one `mc × kc` block into `mr`-row strips (see trait docs).
    fn pack(&self, dst: &mut [f32], i0: usize, mc: usize, k0: usize, kc: usize, mr: usize);
}

/// Pack source for the right operand (logical `[k, n]`).
///
/// `pack` must fill `dst` with rows `[k0, k0+kc)` × cols `[j0, j0+nc)`
/// laid out as `NR`-column strips, k-major within a strip:
/// `dst[s·(kc·nr) + p·nr + j] = B[k0 + p][j0 + s·nr + j]`,
/// with columns past the panel's end zero-filled.
pub trait BPanels: Sync {
    /// Pack one `kc × nc` panel into `nr`-column strips (see trait docs).
    fn pack(&self, dst: &mut [f32], k0: usize, kc: usize, j0: usize, nc: usize, nr: usize);
}

/// Dense row-major left operand `[m, k]` with row stride `k`.
pub struct DenseA<'a> {
    /// Row-major data, at least `m·k` long.
    pub data: &'a [f32],
    /// Row stride (the k dimension).
    pub k: usize,
}

impl APanels for DenseA<'_> {
    fn pack(&self, dst: &mut [f32], i0: usize, mc: usize, k0: usize, kc: usize, mr: usize) {
        for (s, rows) in (0..mc).step_by(mr).enumerate() {
            let hm = mr.min(mc - rows);
            let strip = &mut dst[s * kc * mr..(s * kc * mr) + kc * mr];
            if hm < mr {
                strip.fill(0.0);
            }
            // Row-major source: read each A row contiguously, scatter at
            // stride `mr` into the (L1-resident) strip.
            for r in 0..hm {
                let src = &self.data[(i0 + rows + r) * self.k + k0..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    strip[p * mr + r] = v;
                }
            }
        }
    }
}

/// Transposed left operand: stored `[k, m]`, logically `A = storedᵀ`.
pub struct DenseATrans<'a> {
    /// Stored row-major `[k, m]` data.
    pub data: &'a [f32],
    /// Stored row stride (the logical m dimension).
    pub m: usize,
}

impl APanels for DenseATrans<'_> {
    fn pack(&self, dst: &mut [f32], i0: usize, mc: usize, k0: usize, kc: usize, mr: usize) {
        for (s, rows) in (0..mc).step_by(mr).enumerate() {
            let hm = mr.min(mc - rows);
            let strip = &mut dst[s * kc * mr..(s * kc * mr) + kc * mr];
            for p in 0..kc {
                let src = &self.data[(k0 + p) * self.m + i0 + rows..];
                for r in 0..mr {
                    strip[p * mr + r] = if r < hm { src[r] } else { 0.0 };
                }
            }
        }
    }
}

/// Dense row-major right operand `[k, n]` with row stride `n`.
pub struct DenseB<'a> {
    /// Row-major data, at least `k·n` long.
    pub data: &'a [f32],
    /// Row stride (the n dimension).
    pub n: usize,
}

impl BPanels for DenseB<'_> {
    fn pack(&self, dst: &mut [f32], k0: usize, kc: usize, j0: usize, nc: usize, nr: usize) {
        for (s, cols) in (0..nc).step_by(nr).enumerate() {
            let w = nr.min(nc - cols);
            let strip = &mut dst[s * kc * nr..(s * kc * nr) + kc * nr];
            for p in 0..kc {
                let src = &self.data[(k0 + p) * self.n + j0 + cols..][..w];
                let row = &mut strip[p * nr..(p + 1) * nr];
                row[..w].copy_from_slice(src);
                row[w..].fill(0.0);
            }
        }
    }
}

/// Transposed right operand: stored `[n, k]`, logically `B = storedᵀ`.
pub struct DenseBTrans<'a> {
    /// Stored row-major `[n, k]` data.
    pub data: &'a [f32],
    /// Stored row stride (the logical k dimension).
    pub k: usize,
}

impl BPanels for DenseBTrans<'_> {
    fn pack(&self, dst: &mut [f32], k0: usize, kc: usize, j0: usize, nc: usize, nr: usize) {
        for (s, cols) in (0..nc).step_by(nr).enumerate() {
            let w = nr.min(nc - cols);
            let strip = &mut dst[s * kc * nr..(s * kc * nr) + kc * nr];
            for j in 0..nr {
                if j < w {
                    let src = &self.data[(j0 + cols + j) * self.k + k0..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        strip[p * nr + j] = v;
                    }
                } else {
                    for p in 0..kc {
                        strip[p * nr + j] = 0.0;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ISA selection
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    Avx512,
    Avx2,
    Scalar,
}

impl Isa {
    fn tile(self) -> (usize, usize) {
        match self {
            Isa::Avx512 => (8, 48),
            Isa::Avx2 => (6, 16),
            Isa::Scalar => (4, 16),
        }
    }
}

fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        let req = std::env::var("FEDKNOW_KERNEL_ISA").unwrap_or_default();
        let avx512 = is_x86_feature_detected!("avx512f");
        let avx2 = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
        match req.as_str() {
            "scalar" => return Isa::Scalar,
            "avx2" if avx2 => return Isa::Avx2,
            "avx512" if avx512 => return Isa::Avx512,
            _ => {}
        }
        if avx512 {
            return Isa::Avx512;
        }
        if avx2 {
            return Isa::Avx2;
        }
    }
    Isa::Scalar
}

fn isa() -> Isa {
    static ISA: std::sync::OnceLock<Isa> = std::sync::OnceLock::new();
    *ISA.get_or_init(detect_isa)
}

/// `(MR, NR)` register-tile dimensions the selected microkernel uses —
/// exported so the fuzz generators can aim shapes at tile boundaries.
pub fn tile_params() -> (usize, usize) {
    isa().tile()
}

/// Name of the selected microkernel, for bench/report output.
pub fn isa_name() -> &'static str {
    match isa() {
        Isa::Avx512 => "avx512 8x48",
        Isa::Avx2 => "avx2+fma 6x16",
        Isa::Scalar => "scalar 4x16",
    }
}

// ---------------------------------------------------------------------------
// Microkernels: C[mr × nr] += PA · PB over kc steps, ascending k.
// ---------------------------------------------------------------------------

/// # Safety
/// Requires AVX-512F. `pa` must hold `kc·8` floats, `pb` `kc·48`, and `c`
/// must be valid for the 8×48 tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kern_8x48_avx512(pa: *const f32, pb: *const f32, c: *mut f32, ldc: usize, kc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_ps(); 3]; 8];
    let mut pa = pa;
    let mut pb = pb;
    for _ in 0..kc {
        let b0 = _mm512_loadu_ps(pb);
        let b1 = _mm512_loadu_ps(pb.add(16));
        let b2 = _mm512_loadu_ps(pb.add(32));
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*pa.add(r));
            acc_r[0] = _mm512_fmadd_ps(av, b0, acc_r[0]);
            acc_r[1] = _mm512_fmadd_ps(av, b1, acc_r[1]);
            acc_r[2] = _mm512_fmadd_ps(av, b2, acc_r[2]);
        }
        pa = pa.add(8);
        pb = pb.add(48);
    }
    for (r, acc_r) in acc.iter().enumerate() {
        for (j, &v) in acc_r.iter().enumerate() {
            let p = c.add(r * ldc + j * 16);
            _mm512_storeu_ps(p, _mm512_add_ps(_mm512_loadu_ps(p), v));
        }
    }
}

/// 8×32 edge variant: same packed strips (B row stride stays 48), only
/// the first 32 lanes computed. The per-element FMA chain is identical to
/// [`kern_8x48_avx512`], so edge tiles stay bit-identical to full tiles.
///
/// # Safety
/// Requires AVX-512F. `pa` must hold `kc·8` floats, `pb` `kc·48`, and `c`
/// must be valid for an 8×32 tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kern_8x32_avx512(pa: *const f32, pb: *const f32, c: *mut f32, ldc: usize, kc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_ps(); 2]; 8];
    let mut pa = pa;
    let mut pb = pb;
    for _ in 0..kc {
        let b0 = _mm512_loadu_ps(pb);
        let b1 = _mm512_loadu_ps(pb.add(16));
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*pa.add(r));
            acc_r[0] = _mm512_fmadd_ps(av, b0, acc_r[0]);
            acc_r[1] = _mm512_fmadd_ps(av, b1, acc_r[1]);
        }
        pa = pa.add(8);
        pb = pb.add(48);
    }
    for (r, acc_r) in acc.iter().enumerate() {
        for (j, &v) in acc_r.iter().enumerate() {
            let p = c.add(r * ldc + j * 16);
            _mm512_storeu_ps(p, _mm512_add_ps(_mm512_loadu_ps(p), v));
        }
    }
}

/// 8×16 edge variant of [`kern_8x48_avx512`]; see [`kern_8x32_avx512`].
///
/// # Safety
/// Requires AVX-512F. `pa` must hold `kc·8` floats, `pb` `kc·48`, and `c`
/// must be valid for an 8×16 tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kern_8x16_avx512(pa: *const f32, pb: *const f32, c: *mut f32, ldc: usize, kc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [_mm512_setzero_ps(); 8];
    let mut pa = pa;
    let mut pb = pb;
    for _ in 0..kc {
        let b0 = _mm512_loadu_ps(pb);
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*pa.add(r));
            *acc_r = _mm512_fmadd_ps(av, b0, *acc_r);
        }
        pa = pa.add(8);
        pb = pb.add(48);
    }
    for (r, &v) in acc.iter().enumerate() {
        let p = c.add(r * ldc);
        _mm512_storeu_ps(p, _mm512_add_ps(_mm512_loadu_ps(p), v));
    }
}

/// # Safety
/// Requires AVX2+FMA. `pa` must hold `kc·6` floats, `pb` `kc·16`, and `c`
/// must be valid for the 6×16 tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kern_6x16_avx2(pa: *const f32, pb: *const f32, c: *mut f32, ldc: usize, kc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; 6];
    let mut pa = pa;
    let mut pb = pb;
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(pb);
        let b1 = _mm256_loadu_ps(pb.add(8));
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*pa.add(r));
            acc_r[0] = _mm256_fmadd_ps(av, b0, acc_r[0]);
            acc_r[1] = _mm256_fmadd_ps(av, b1, acc_r[1]);
        }
        pa = pa.add(6);
        pb = pb.add(16);
    }
    for (r, acc_r) in acc.iter().enumerate() {
        for (j, &v) in acc_r.iter().enumerate() {
            let p = c.add(r * ldc + j * 8);
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), v));
        }
    }
}

/// 6×8 edge variant of [`kern_6x16_avx2`] (B row stride stays 16, first
/// 8 lanes computed; per-element FMA chain identical).
///
/// # Safety
/// Requires AVX2+FMA. `pa` must hold `kc·6` floats, `pb` `kc·16`, and `c`
/// must be valid for a 6×8 tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn kern_6x8_avx2(pa: *const f32, pb: *const f32, c: *mut f32, ldc: usize, kc: usize) {
    use std::arch::x86_64::*;
    let mut acc = [_mm256_setzero_ps(); 6];
    let mut pa = pa;
    let mut pb = pb;
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(pb);
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*pa.add(r));
            *acc_r = _mm256_fmadd_ps(av, b0, *acc_r);
        }
        pa = pa.add(6);
        pb = pb.add(16);
    }
    for (r, &v) in acc.iter().enumerate() {
        let p = c.add(r * ldc);
        _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), v));
    }
}

/// Portable 4×16 microkernel; the inner loop is written over fixed-size
/// arrays so LLVM vectorizes it at the baseline target.
fn kern_4x16_scalar(pa: &[f32], pb: &[f32], c: &mut [f32], ldc: usize, kc: usize) {
    let mut acc = [[0.0f32; 16]; 4];
    for p in 0..kc {
        let a = &pa[p * 4..p * 4 + 4];
        let b = &pb[p * 16..p * 16 + 16];
        for r in 0..4 {
            let av = a[r];
            for j in 0..16 {
                acc[r][j] += av * b[j];
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        let row = &mut c[r * ldc..r * ldc + 16];
        for (o, &v) in row.iter_mut().zip(acc_r) {
            *o += v;
        }
    }
}

/// Run the selected microkernel on one full tile.
///
/// Safety of the unsafe branches: the ISA was runtime-detected, and the
/// caller guarantees `pa`/`pb` hold `kc` packed steps and `c` spans the
/// full `mr × nr` tile at stride `ldc`.
fn microkernel(which: Isa, pa: &[f32], pb: &[f32], c: &mut [f32], ldc: usize, kc: usize) {
    match which {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe {
            kern_8x48_avx512(pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr(), ldc, kc)
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { kern_6x16_avx2(pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr(), ldc, kc) },
        #[cfg(not(target_arch = "x86_64"))]
        Isa::Avx512 | Isa::Avx2 => kern_4x16_scalar(pa, pb, c, ldc, kc),
        Isa::Scalar => kern_4x16_scalar(pa, pb, c, ldc, kc),
    }
}

/// Run a microkernel on an edge tile of valid width `w`, choosing the
/// narrowest register variant that covers `w` so a 16-wide edge strip
/// does not pay for 48 lanes of FMA. Every variant accumulates each
/// output element through the identical ascending-k chain, so edge tiles
/// are bit-identical to full tiles (and to each other) — the width choice
/// depends only on the strip, never on the thread partition.
///
/// `c` is the caller's `mr × nr` scratch tile (row stride `nr`).
#[allow(unused_variables)] // `w` is unused on non-x86_64 targets
fn microkernel_edge(
    which: Isa,
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
    nr: usize,
    kc: usize,
    w: usize,
) {
    match which {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe {
            let (pa, pb, c) = (pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr());
            if w <= 16 {
                kern_8x16_avx512(pa, pb, c, nr, kc)
            } else if w <= 32 {
                kern_8x32_avx512(pa, pb, c, nr, kc)
            } else {
                kern_8x48_avx512(pa, pb, c, nr, kc)
            }
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            let (pa, pb, c) = (pa.as_ptr(), pb.as_ptr(), c.as_mut_ptr());
            if w <= 8 {
                kern_6x8_avx2(pa, pb, c, nr, kc)
            } else {
                kern_6x16_avx2(pa, pb, c, nr, kc)
            }
        },
        #[cfg(not(target_arch = "x86_64"))]
        Isa::Avx512 | Isa::Avx2 => kern_4x16_scalar(pa, pb, c, nr, kc),
        Isa::Scalar => kern_4x16_scalar(pa, pb, c, nr, kc),
    }
}

// ---------------------------------------------------------------------------
// Blocked driver
// ---------------------------------------------------------------------------

fn buf_lens(mr: usize, nr: usize) -> (usize, usize) {
    (MC.div_ceil(mr) * mr * KC, NC.div_ceil(nr) * nr * KC)
}

/// Serial blocked GEMM over rows `[row0, row0+rows)`, writing into
/// `out_rows` (that row range's slice, row stride `n`). `out_rows` must
/// already be zeroed.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    which: Isa,
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    a: &dyn APanels,
    b: &dyn BPanels,
    out_rows: &mut [f32],
) {
    let (mr, nr) = which.tile();
    let (pa_len, pb_len) = buf_lens(mr, nr);
    let mut pa = pool::take(pa_len);
    let mut pb = pool::take(pb_len);
    let mut tile = pool::take(mr * nr);

    let mut kk = 0;
    while kk < k {
        let kc = KC.min(k - kk);
        let mut jj = 0;
        while jj < n {
            let nc = NC.min(n - jj);
            b.pack(&mut pb, kk, kc, jj, nc, nr);
            let nstrips = nc.div_ceil(nr);
            let mut ii = 0;
            while ii < rows {
                let mc = MC.min(rows - ii);
                a.pack(&mut pa, row0 + ii, mc, kk, kc, mr);
                let mstrips = mc.div_ceil(mr);
                for js in 0..nstrips {
                    let j0 = jj + js * nr;
                    let w = nr.min(n - j0);
                    let pbs = &pb[js * kc * nr..(js * kc * nr) + kc * nr];
                    for is in 0..mstrips {
                        let i0 = ii + is * mr;
                        let hm = mr.min(rows - i0);
                        let pas = &pa[is * kc * mr..(is * kc * mr) + kc * mr];
                        if hm == mr && w == nr {
                            let c = &mut out_rows[i0 * n + j0..];
                            microkernel(which, pas, pbs, c, n, kc);
                        } else {
                            // Edge tile: narrowest covering microkernel
                            // into a scratch tile, then add back the valid
                            // region — no slow path, no divergent
                            // accumulation order.
                            tile.fill(0.0);
                            microkernel_edge(which, pas, pbs, &mut tile, nr, kc, w);
                            for r in 0..hm {
                                let dst = &mut out_rows[(i0 + r) * n + j0..(i0 + r) * n + j0 + w];
                                let src = &tile[r * nr..r * nr + w];
                                for (o, &v) in dst.iter_mut().zip(src) {
                                    *o += v;
                                }
                            }
                        }
                    }
                }
                ii += mc;
            }
            jj += nc;
        }
        kk += kc;
    }

    pool::give(tile);
    pool::give(pb);
    pool::give(pa);
}

/// `out[m × n] = A[m × k] · B[k × n]` with packed panels and register
/// tiles. `out` is overwritten. Parallelizes over output-row chunks when
/// [`parallel::threads`] > 1; results are bit-identical for every thread
/// count (see module docs).
pub fn gemm(m: usize, k: usize, n: usize, a: &dyn APanels, b: &dyn BPanels, out: &mut [f32]) {
    assert_eq!(out.len(), m * n, "gemm output length mismatch");
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let which = isa();
    let (mr, _) = which.tile();
    let t = parallel::threads();
    // Serial fast path before building the chunk list: the steady-state
    // training loop must not allocate (alloc_steady_state pins this).
    if t <= 1 || m <= mr {
        gemm_rows(which, 0, m, k, n, a, b, out);
        return;
    }
    let chunks = parallel::chunks(m, mr, t);
    if chunks.len() <= 1 {
        gemm_rows(which, 0, m, k, n, a, b, out);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = out;
        for &(row0, rows) in &chunks {
            let (mine, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            s.spawn(move || gemm_rows(which, row0, rows, k, n, a, b, mine));
        }
    });
}

/// Convenience wrapper: dense row-major `A[m,k] · B[k,n]`.
pub fn gemm_dense(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    gemm(m, k, n, &DenseA { data: a, k }, &DenseB { data: b, n }, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
        out
    }

    fn vals(n: usize, salt: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2654435761).wrapping_add(salt * 977);
                ((x % 1000) as f32) / 1000.0 - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        let (mr, nr) = tile_params();
        let dims = [1, 2, 3, mr - 1, mr, mr + 1, nr - 1, nr, nr + 1, 2 * nr + 3];
        for &m in &dims {
            for &n in &dims {
                for &k in &[1usize, 2, 7, 31] {
                    let a = vals(m * k, 1);
                    let b = vals(k * n, 2);
                    let want = naive(&a, &b, m, k, n);
                    let mut got = vec![f32::NAN; m * n];
                    gemm_dense(m, k, n, &a, &b, &mut got);
                    for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                        assert!(
                            (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                            "m={m} k={k} n={n} idx={i}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deep_k_crosses_kc_boundary() {
        let (m, n) = (9, 50);
        for &k in &[KC - 1, KC, KC + 1] {
            let a = vals(m * k, 3);
            let b = vals(k * n, 4);
            let want = naive(&a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_dense(m, k, n, &a, &b, &mut got);
            for (&g, &w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-3 * (1.0 + w.abs()), "k={k}");
            }
        }
    }

    #[test]
    fn transposed_pack_sources_match_dense() {
        let (m, k, n) = (13, 29, 21);
        let a = vals(m * k, 5);
        let b = vals(k * n, 6);
        // A stored transposed [k, m].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        // B stored transposed [n, k].
        let mut bt = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut want = vec![0.0f32; m * n];
        gemm_dense(m, k, n, &a, &b, &mut want);
        let mut via_at = vec![0.0f32; m * n];
        gemm(
            m,
            k,
            n,
            &DenseATrans { data: &at, m },
            &DenseB { data: &b, n },
            &mut via_at,
        );
        assert_eq!(want, via_at, "transposed-A pack must be bit-identical");
        let mut via_bt = vec![0.0f32; m * n];
        gemm(
            m,
            k,
            n,
            &DenseA { data: &a, k },
            &DenseBTrans { data: &bt, k },
            &mut via_bt,
        );
        assert_eq!(want, via_bt, "transposed-B pack must be bit-identical");
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let (m, k, n) = (67, 123, 95);
        let a = vals(m * k, 7);
        let b = vals(k * n, 8);
        let mut serial = vec![0.0f32; m * n];
        parallel::with_threads(1, || gemm_dense(m, k, n, &a, &b, &mut serial));
        for t in [2, 4, 8] {
            let mut par = vec![0.0f32; m * n];
            parallel::with_threads(t, || gemm_dense(m, k, n, &a, &b, &mut par));
            assert_eq!(serial, par, "threads={t}");
        }
    }

    #[test]
    fn edge_width_variants_are_bit_identical_to_full_tiles() {
        // Column prefixes of a wide GEMM must match the narrow GEMM
        // exactly: the narrow edge kernels run the same per-element FMA
        // chain as the full-width kernel.
        let (_, nr) = tile_params();
        let (m, k) = (11, 100);
        let a = vals(m * k, 10);
        let b = vals(k * nr, 11);
        let mut full = vec![0.0f32; m * nr];
        gemm_dense(m, k, nr, &a, &b, &mut full);
        for &n in &[1usize, 7, 8, 9, 15, 16, 17, 31, 32, 33, nr - 1] {
            // B's first n columns, densely packed.
            let bn: Vec<f32> = (0..k)
                .flat_map(|p| b[p * nr..p * nr + n].to_vec())
                .collect();
            let mut narrow = vec![0.0f32; m * n];
            gemm_dense(m, k, n, &a, &bn, &mut narrow);
            for i in 0..m {
                assert_eq!(
                    narrow[i * n..(i + 1) * n],
                    full[i * nr..i * nr + n],
                    "n={n} row={i}: edge kernel diverged from full tile"
                );
            }
        }
    }

    #[test]
    fn degenerate_dims_yield_zeros_or_empty() {
        let mut out = vec![1.0f32; 6];
        gemm_dense(2, 0, 3, &[], &[], &mut out);
        assert_eq!(out, vec![0.0; 6], "k=0 must zero the output");
        let mut empty: Vec<f32> = Vec::new();
        gemm_dense(0, 5, 3, &[], &vals(15, 9), &mut empty);
    }
}
