//! FLOP and byte cost models for the workspace's numerical kernels.
//!
//! One place defines what "the work" of each kernel is; the instrument
//! sites (`tensor::matmul*`, `qp`, `distance`, `fedknow-nn::conv`,
//! `fedknow-fl::server`), the `kernel_bench` microbenchmark and the
//! verify-oracle cross-check tests all quote these functions, so a
//! formula can never drift from what is counted.
//!
//! Conventions:
//!
//! * **FLOPs are exact operation counts** under the multiply-accumulate
//!   = 2 FLOPs convention used by [`fedknow_nn`'s `Layer::flops`]. For
//!   convolution the count includes taps that fall in the zero padding:
//!   the im2col+GEMM implementation really multiplies those zeros, and
//!   the verify oracles count loop-trip entries the same way.
//! * **Bytes are compulsory operand traffic**: each logical operand
//!   read or written once at `f32` width (4 bytes), plus explicitly
//!   materialised intermediates (the im2col column buffer) counted once
//!   per write and once per read. Cache reuse is deliberately ignored —
//!   this is the numerator convention of a classical roofline model,
//!   so `flops/bytes` is the *arithmetic intensity* an infinite cache
//!   would see.
//! * Comparison-dominated kernels (sorting inside the Wasserstein
//!   distance) count one "FLOP" per comparison; that makes the number a
//!   work estimate rather than a float-op count, and is called out on
//!   the function.

/// A kernel invocation's modelled cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Floating-point operations (MAC = 2).
    pub flops: u64,
    /// Bytes moved (compulsory operand traffic).
    pub bytes: u64,
}

impl Cost {
    /// Arithmetic intensity in FLOPs per byte (`None` for zero bytes).
    pub fn intensity(&self) -> Option<f64> {
        (self.bytes > 0).then(|| self.flops as f64 / self.bytes as f64)
    }

    /// Component-wise sum.
    pub fn plus(self, other: Cost) -> Cost {
        Cost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// Dense GEMM `[m,k] × [k,n] → [m,n]`: one MAC per `(i,p,j)` triple.
/// Applies equally to the `tn`/`nt` variants (they reorder the loops,
/// not the arithmetic).
pub fn matmul(m: usize, k: usize, n: usize) -> Cost {
    let (m, k, n) = (m as u64, k as u64, n as u64);
    Cost {
        flops: 2 * m * k * n,
        bytes: 4 * (m * k + k * n + m * n),
    }
}

/// Shape of one conv2d invocation, mirroring `fedknow-nn`'s layer
/// fields and `fedknow-verify`'s `ConvSpec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dShape {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub padding: usize,
    /// Channel groups.
    pub groups: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
}

impl Conv2dShape {
    /// Output spatial size `(oh, ow)`.
    pub fn out_hw(&self) -> (usize, usize) {
        let oh = (self.h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (self.w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Input channels per group.
    pub fn cg(&self) -> usize {
        self.in_c / self.groups
    }

    /// Elements in the input tensor.
    pub fn input_len(&self) -> usize {
        self.batch * self.in_c * self.h * self.w
    }

    /// Elements in the weight tensor.
    pub fn weight_len(&self) -> usize {
        self.out_c * self.cg() * self.kernel * self.kernel
    }

    /// Elements in the output tensor.
    pub fn output_len(&self) -> usize {
        let (oh, ow) = self.out_hw();
        self.batch * self.out_c * oh * ow
    }

    /// Elements in the materialised im2col column buffer (whole batch).
    pub fn col_len(&self) -> usize {
        let (oh, ow) = self.out_hw();
        self.batch * self.groups * self.cg() * self.kernel * self.kernel * oh * ow
    }

    /// Kernel taps per output element (`cg·k²`), the inner GEMM depth.
    pub fn taps(&self) -> u64 {
        (self.cg() * self.kernel * self.kernel) as u64
    }
}

/// Conv2d forward: one MAC per tap per output element plus one bias add
/// per output element — `b·OC·oh·ow·(2·cg·k² + 1)`, identical to
/// `fedknow-nn`'s `Layer::flops` for conv and to the forward oracle's
/// loop-trip count.
pub fn conv2d_fwd(s: &Conv2dShape) -> Cost {
    let out = s.output_len() as u64;
    Cost {
        flops: out * (2 * s.taps() + 1),
        bytes: 4
            * (s.input_len() as u64
            + s.weight_len() as u64
            + s.out_c as u64            // bias
            + out
            + 2 * s.col_len() as u64), // im2col written then read by GEMM
    }
}

/// Conv2d backward (inputs + weights + bias): per output element, each
/// tap takes one MAC into `gW` and one MAC into `gx`, plus one add into
/// `gb` — `b·OC·oh·ow·(4·cg·k² + 1)`, matching the backward oracle's
/// loop-trip count.
pub fn conv2d_bwd(s: &Conv2dShape) -> Cost {
    let out = s.output_len() as u64;
    Cost {
        flops: out * (4 * s.taps() + 1),
        // gy read twice (gW and gx GEMMs), col read, weights read, the
        // gx column buffer written then scattered by col2im, plus the
        // three gradient outputs.
        bytes: 4
            * (2 * out
                + 3 * s.col_len() as u64
                + 2 * s.weight_len() as u64
                + s.input_len() as u64
                + s.out_c as u64),
    }
}

/// Feasibility screen of the gradient integrator: `Gg` (k dots of
/// length n) plus the k constraint norms for the margin — always paid,
/// fast path or not.
pub fn qp_screen(k: usize, n: usize) -> Cost {
    let (k, n) = (k as u64, n as u64);
    Cost {
        flops: 2 * k * n + k * (2 * n + 1),
        bytes: 4 * (2 * k * n + n + k),
    }
}

/// Dual QP solve past the screen: the k×k Gram matrix (`k(k+1)/2` dots
/// of length n) plus `iters` projected-gradient steps (`2k²` for
/// `Qv+q`, `~4k` for residual + update) and the primal recovery
/// (`2·k·n` for `g' = Gᵀv + g`).
pub fn qp_solve(k: usize, n: usize, iters: usize) -> Cost {
    let (k, n, iters) = (k as u64, n as u64, iters as u64);
    Cost {
        flops: n * k * (k + 1) + iters * (2 * k * k + 4 * k) + 2 * k * n,
        bytes: 4 * (k * n)            // constraint rows re-read for the Gram
            + 8 * (k * k)             // Gram store (f64)
            + iters * 8 * (k * k + 3 * k) // Qv+q reads, v/grad traffic
            + 4 * (k * n + n), // primal recovery reads + write
    }
}

/// 1-D Wasserstein over two length-n samples: finite screen (2n), two
/// copies, two sorts modelled at `n·(⌊log₂n⌋+1)` comparisons each
/// (counted as 1 "FLOP" per comparison — a work model, not a float-op
/// count), and the paired |x−y| sweep (3n + 1).
pub fn wasserstein(n: usize) -> Cost {
    let n64 = n as u64;
    let log2n = usize::BITS as u64 - (n.max(1) as u64).leading_zeros() as u64;
    Cost {
        flops: 2 * n64 + 2 * n64 * log2n + 3 * n64 + 1,
        bytes: 4 * 6 * n64, // read both inputs, write both copies, read both sorted
    }
}

/// Weighted FedAvg over `clients` uploads of dimension `dim`: one MAC
/// per element per upload plus the final `1/Σw` scale.
pub fn fedavg(clients: usize, dim: usize) -> Cost {
    let (c, d) = (clients as u64, dim as u64);
    Cost {
        flops: 2 * c * d + d,
        bytes: 4 * (c * d + 2 * d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_cost_counts_macs() {
        let c = matmul(2, 3, 4);
        assert_eq!(c.flops, 2 * 2 * 3 * 4);
        assert_eq!(c.bytes, 4 * (6 + 12 + 8));
        let i = c.intensity().unwrap();
        assert!((i - 48.0 / 104.0).abs() < 1e-12);
    }

    #[test]
    fn conv_shape_geometry() {
        // 3→8 channels, 3×3 kernel, stride 2, pad 1 on 7×5 input.
        let s = Conv2dShape {
            batch: 2,
            in_c: 3,
            out_c: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
            groups: 1,
            h: 7,
            w: 5,
        };
        assert_eq!(s.out_hw(), (4, 3));
        assert_eq!(s.taps(), 27);
        assert_eq!(s.output_len(), 2 * 8 * 12);
        let fwd = conv2d_fwd(&s);
        assert_eq!(fwd.flops, (2 * 8 * 12) as u64 * (2 * 27 + 1));
        let bwd = conv2d_bwd(&s);
        assert_eq!(bwd.flops, (2 * 8 * 12) as u64 * (4 * 27 + 1));
        assert!(bwd.bytes > fwd.bytes);
    }

    #[test]
    fn conv_fwd_matches_layer_flops_convention() {
        // Same formula as fedknow-nn's Layer::flops for conv:
        // b·OC·oh·ow·(2·cg·k² + 1).
        let s = Conv2dShape {
            batch: 1,
            in_c: 4,
            out_c: 6,
            kernel: 5,
            stride: 1,
            padding: 2,
            groups: 2,
            h: 8,
            w: 8,
        };
        let per_out = 2 * (4 / 2) * 25 + 1;
        assert_eq!(conv2d_fwd(&s).flops, (6 * 8 * 8) as u64 * per_out as u64);
    }

    #[test]
    fn qp_and_fedavg_and_wasserstein_scale_as_expected() {
        assert_eq!(qp_screen(0, 10).flops, 0);
        let one_iter = qp_solve(3, 100, 1).flops;
        let two_iter = qp_solve(3, 100, 2).flops;
        assert_eq!(two_iter - one_iter, 2 * 9 + 4 * 3);
        assert_eq!(fedavg(4, 10).flops, 2 * 4 * 10 + 10);
        // n = 8: log2 = 4 (⌈log₂8⌉ via bit width of 8 = 1000b).
        let w = wasserstein(8);
        assert_eq!(w.flops, 16 + 2 * 8 * 4 + 24 + 1);
        assert!(wasserstein(0).bytes == 0);
    }
}
