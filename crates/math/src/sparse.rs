//! Sparse index/value vectors.
//!
//! FedKNOW's *knowledge extractor* keeps only the top-ρ fraction of model
//! weights by magnitude (paper Eq. 1). A [`SparseVec`] stores exactly that:
//! sorted indices into the flat parameter vector plus the retained values.
//! Byte-size accounting on this type drives the communication and memory
//! models in `fedknow-fl`.

use serde::{Deserialize, Serialize};

/// A sparse view of a dense `f32` vector: strictly increasing indices with
/// their values.
///
/// ```
/// use fedknow_math::SparseVec;
/// let weights = vec![0.1, -5.0, 0.3, 2.0];
/// // Keep the top-50% by magnitude — the signature knowledge of Eq. 1.
/// let knowledge = SparseVec::top_fraction_by_magnitude(&weights, 0.5);
/// assert_eq!(knowledge.indices(), &[1, 3]);
/// assert_eq!(knowledge.to_dense(), vec![0.0, -5.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    /// Length of the dense vector this was extracted from.
    dense_len: usize,
    /// Strictly increasing indices of retained entries.
    indices: Vec<u32>,
    /// Values at `indices`.
    values: Vec<f32>,
}

impl SparseVec {
    /// Build from parallel index/value arrays. Panics if lengths differ,
    /// indices are not strictly increasing, or an index is out of bounds.
    pub fn new(dense_len: usize, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        if let Some(&last) = indices.last() {
            assert!(
                (last as usize) < dense_len,
                "index {last} out of bounds {dense_len}"
            );
        }
        Self {
            dense_len,
            indices,
            values,
        }
    }

    /// Extract the `keep` entries of `dense` with the largest absolute value.
    ///
    /// This is the paper's magnitude-based pruning: the retained entries are
    /// the signature knowledge of a task. Ties are broken by lower index so
    /// the result is deterministic.
    pub fn top_k_by_magnitude(dense: &[f32], keep: usize) -> Self {
        let keep = keep.min(dense.len());
        if keep == 0 {
            return Self {
                dense_len: dense.len(),
                indices: vec![],
                values: vec![],
            };
        }
        // Select-nth on |value| descending, then sort the kept indices.
        let mut idx: Vec<u32> = (0..dense.len() as u32).collect();
        idx.select_nth_unstable_by(keep - 1, |&a, &b| {
            let (va, vb) = (dense[a as usize].abs(), dense[b as usize].abs());
            vb.partial_cmp(&va)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(keep);
        idx.sort_unstable();
        let values = idx.iter().map(|&i| dense[i as usize]).collect();
        Self {
            dense_len: dense.len(),
            indices: idx,
            values,
        }
    }

    /// Extract entries whose absolute value is at least the `1 - rho`
    /// quantile — i.e. keep the top `rho` fraction (paper Eq. 1 with
    /// quantile ρ). `rho` is clamped to `[0, 1]`.
    pub fn top_fraction_by_magnitude(dense: &[f32], rho: f64) -> Self {
        let rho = rho.clamp(0.0, 1.0);
        let keep = ((dense.len() as f64) * rho).round() as usize;
        Self::top_k_by_magnitude(dense, keep)
    }

    /// Number of retained entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Length of the originating dense vector.
    pub fn dense_len(&self) -> usize {
        self.dense_len
    }

    /// Retained indices (strictly increasing).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Retained values, parallel to [`Self::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Materialise as a dense vector with zeros elsewhere.
    ///
    /// This is how the gradient restorer rebuilds a pruned model: retained
    /// weights keep their value, pruned weights are zero.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dense_len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Overwrite the retained positions of `dense` with the stored values,
    /// leaving other positions untouched.
    pub fn scatter_into(&self, dense: &mut [f32]) {
        assert_eq!(dense.len(), self.dense_len, "scatter_into length mismatch");
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            dense[i as usize] = v;
        }
    }

    /// Read the current values of the retained positions out of `dense`
    /// (used when fine-tuning only the knowledge weights).
    pub fn gather_from(&mut self, dense: &[f32]) {
        assert_eq!(dense.len(), self.dense_len, "gather_from length mismatch");
        for (i, v) in self.indices.iter().zip(self.values.iter_mut()) {
            *v = dense[*i as usize];
        }
    }

    /// Bytes this knowledge occupies on the wire / in memory:
    /// 4 bytes per index + 4 bytes per value.
    pub fn size_bytes(&self) -> usize {
        self.indices.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
    }

    /// A boolean mask over the dense vector, true at retained positions.
    pub fn mask(&self) -> Vec<bool> {
        let mut m = vec![false; self.dense_len];
        for &i in &self.indices {
            m[i as usize] = true;
        }
        m
    }

    /// Jaccard similarity of the retained-index *supports*:
    /// `|A ∩ B| / |A ∪ B|`, in `[0, 1]`. Two empty supports count as
    /// fully overlapping (1.0). Linear two-pointer merge over the
    /// strictly-increasing index lists.
    pub fn jaccard(&self, other: &SparseVec) -> f64 {
        let (a, b) = (&self.indices, &other.indices);
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let dense = vec![0.1, -5.0, 0.3, 2.0, -0.2];
        let s = SparseVec::top_k_by_magnitude(&dense, 2);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.values(), &[-5.0, 2.0]);
    }

    #[test]
    fn top_fraction_rounds_count() {
        let dense: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let s = SparseVec::top_fraction_by_magnitude(&dense, 0.3);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.indices(), &[7, 8, 9]);
    }

    #[test]
    fn dense_roundtrip_zeros_pruned_positions() {
        let dense = vec![1.0, -2.0, 3.0, -4.0];
        let s = SparseVec::top_k_by_magnitude(&dense, 2);
        assert_eq!(s.to_dense(), vec![0.0, 0.0, 3.0, -4.0]);
    }

    #[test]
    fn scatter_preserves_untouched_positions() {
        let orig = vec![1.0, -2.0, 3.0, -4.0];
        let s = SparseVec::top_k_by_magnitude(&orig, 2);
        let mut target = vec![9.0; 4];
        s.scatter_into(&mut target);
        assert_eq!(target, vec![9.0, 9.0, 3.0, -4.0]);
    }

    #[test]
    fn gather_updates_values() {
        let orig = vec![1.0, -2.0, 3.0, -4.0];
        let mut s = SparseVec::top_k_by_magnitude(&orig, 2);
        let newer = vec![0.0, 0.0, 30.0, -40.0];
        s.gather_from(&newer);
        assert_eq!(s.values(), &[30.0, -40.0]);
    }

    #[test]
    fn size_bytes_is_eight_per_entry() {
        let s = SparseVec::top_k_by_magnitude(&[1.0; 100], 10);
        assert_eq!(s.size_bytes(), 80);
    }

    #[test]
    fn keep_zero_and_keep_all_edge_cases() {
        let dense = vec![1.0, 2.0];
        assert_eq!(SparseVec::top_k_by_magnitude(&dense, 0).nnz(), 0);
        let all = SparseVec::top_k_by_magnitude(&dense, 5);
        assert_eq!(all.nnz(), 2);
        assert_eq!(all.to_dense(), dense);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn new_rejects_unsorted_indices() {
        let _ = SparseVec::new(10, vec![3, 1], vec![0.0, 0.0]);
    }

    #[test]
    fn jaccard_measures_support_overlap() {
        let a = SparseVec::new(10, vec![0, 1, 2, 3], vec![1.0; 4]);
        let b = SparseVec::new(10, vec![2, 3, 4, 5], vec![1.0; 4]);
        // |{2,3}| / |{0..=5}| = 2/6.
        assert!((a.jaccard(&b) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(a.jaccard(&a), 1.0);
        let empty = SparseVec::new(10, vec![], vec![]);
        assert_eq!(a.jaccard(&empty), 0.0);
        assert_eq!(empty.jaccard(&empty), 1.0);
    }
}
