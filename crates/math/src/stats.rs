//! Small statistics helpers shared by the metrics and experiment layers.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation (population).
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated quantile, `q ∈ [0, 1]`. Panics on empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Relative improvement of `ours` over `baseline`, in percent:
/// `(ours - baseline) / baseline * 100`. Returns `0.0` when the baseline
/// is zero (avoids propagating infinities into report tables).
pub fn percent_improvement(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (ours - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percent_improvement_handles_zero_baseline() {
        assert_eq!(percent_improvement(0.5, 0.0), 0.0);
        assert!((percent_improvement(0.6, 0.4) - 50.0).abs() < 1e-9);
    }
}
