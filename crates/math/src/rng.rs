//! Seeded sampling helpers.
//!
//! The workspace pins `rand` (allowed offline) but not `rand_distr`, so the
//! Gaussian sampler is implemented here with the Box–Muller transform.
//! Every experiment threads an explicit [`StdRng`] seeded from its config,
//! making datasets, partitions and weight initialisation reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct the workspace's standard RNG from a `u64` seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent child RNG from a parent seed and a stream index.
///
/// Used to give each client / task / dataset its own deterministic stream
/// without the streams being trivially correlated: the pair is mixed with
/// SplitMix64 before seeding.
pub fn substream(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)))
}

/// SplitMix64 finaliser — a cheap, well-distributed 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One standard-normal sample via Box–Muller.
pub fn normal(rng: &mut StdRng) -> f32 {
    // Draw u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Fill a slice with `N(mean, std)` samples.
pub fn fill_normal(rng: &mut StdRng, out: &mut [f32], mean: f32, std: f32) {
    for x in out.iter_mut() {
        *x = mean + std * normal(rng);
    }
}

/// A vector of `n` samples from `N(mean, std)`.
pub fn normal_vec(rng: &mut StdRng, n: usize, mean: f32, std: f32) -> Vec<f32> {
    let mut v = vec![0.0; n];
    fill_normal(rng, &mut v, mean, std);
    v
}

/// Kaiming/He-style fan-in initialisation: `N(0, sqrt(2 / fan_in))`.
/// The standard init for ReLU networks; used by every layer in the zoo.
pub fn kaiming_vec(rng: &mut StdRng, n: usize, fan_in: usize) -> Vec<f32> {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal_vec(rng, n, 0.0, std)
}

/// Sample `k` distinct indices from `0..n` (Floyd's algorithm), sorted.
pub fn sample_indices(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

/// Fisher–Yates shuffle of a slice.
pub fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn substreams_differ() {
        let mut a = substream(42, 0);
        let mut b = substream(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = seeded(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = seeded(9);
        let v = kaiming_vec(&mut rng, 10_000, 50);
        let var: f32 = v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!((var - 2.0 / 50.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = seeded(3);
        let idx = sample_indices(&mut rng, 100, 10);
        assert_eq!(idx.len(), 10);
        for w in idx.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*idx.last().unwrap() < 100);
    }

    #[test]
    fn sample_indices_clamps_k() {
        let mut rng = seeded(3);
        let idx = sample_indices(&mut rng, 5, 50);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = seeded(11);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }
}
