//! Property-based tests for the numerical core.

use fedknow_math::distance::{
    cosine_distance, euclidean, most_dissimilar, wasserstein_1d, DistanceMetric,
};
use fedknow_math::qp::{integrate_gradient, QpConfig};
use fedknow_math::sparse::SparseVec;
use fedknow_math::tensor::Tensor;
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (AB)C == A(BC) within float tolerance.
    #[test]
    fn matmul_is_associative(
        a in vec_f32(6), b in vec_f32(6), c in vec_f32(6)
    ) {
        let a = Tensor::from_vec(a, &[2, 3]);
        let b = Tensor::from_vec(b, &[3, 2]);
        let c = Tensor::from_vec(c, &[2, 3]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs().max(y.abs())));
        }
    }

    /// Softmax rows always sum to 1 and are non-negative.
    #[test]
    fn softmax_is_probability(xs in vec_f32(12)) {
        let t = Tensor::from_vec(xs, &[3, 4]).softmax_rows();
        for i in 0..3 {
            let s: f32 = (0..4).map(|j| t.at2(i, j)).sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            for j in 0..4 {
                prop_assert!(t.at2(i, j) >= 0.0);
            }
        }
    }

    /// Top-k extraction keeps exactly the k largest magnitudes: every kept
    /// value's magnitude is >= every dropped value's magnitude.
    #[test]
    fn top_k_magnitude_dominates_dropped(dense in vec_f32(32), k in 0usize..32) {
        let s = SparseVec::top_k_by_magnitude(&dense, k);
        prop_assert_eq!(s.nnz(), k);
        let mask = s.mask();
        let min_kept = s.values().iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        for (i, &v) in dense.iter().enumerate() {
            if !mask[i] {
                prop_assert!(v.abs() <= min_kept + 1e-6);
            }
        }
    }

    /// Sparse round-trip: retained positions survive, others zero.
    #[test]
    fn sparse_roundtrip(dense in vec_f32(24), k in 0usize..24) {
        let s = SparseVec::top_k_by_magnitude(&dense, k);
        let d = s.to_dense();
        let mask = s.mask();
        for i in 0..dense.len() {
            if mask[i] {
                prop_assert_eq!(d[i], dense[i]);
            } else {
                prop_assert_eq!(d[i], 0.0);
            }
        }
    }

    /// Wasserstein is a pseudo-metric on these inputs: symmetric,
    /// non-negative, zero on identical inputs.
    #[test]
    fn wasserstein_pseudo_metric(a in vec_f32(16), b in vec_f32(16)) {
        let ab = wasserstein_1d(&a, &b);
        let ba = wasserstein_1d(&b, &a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(wasserstein_1d(&a, &a) < 1e-9);
    }

    /// Cosine distance stays in [0, 2].
    #[test]
    fn cosine_bounded(a in vec_f32(16), b in vec_f32(16)) {
        let d = cosine_distance(&a, &b);
        prop_assert!((-1e-6..=2.0 + 1e-6).contains(&d));
    }

    /// Translating every sample by `c` moves the empirical distribution
    /// by exactly `|c|` — the transport plan shifts all mass together.
    #[test]
    fn wasserstein_translation_is_the_shift(a in vec_f32(16), c in -5.0f32..5.0) {
        let shifted: Vec<f32> = a.iter().map(|&x| x + c).collect();
        let d = wasserstein_1d(&a, &shifted);
        prop_assert!((d - (c as f64).abs()).abs() < 1e-4, "W = {d}, |c| = {}", c.abs());
    }

    /// The zero vector is orthogonal to everything by convention
    /// (distance 1), in both argument positions.
    #[test]
    fn cosine_zero_vector_convention(a in vec_f32(16)) {
        let z = vec![0.0f32; 16];
        prop_assert_eq!(cosine_distance(&z, &a), 1.0);
        prop_assert_eq!(cosine_distance(&a, &z), 1.0);
    }

    /// A permutation moves a gradient in Euclidean space but is invisible
    /// to Wasserstein (same empirical distribution): W(a, π(a)) = 0 ≤
    /// ‖a − π(a)‖, and the Wasserstein selection rule ranks a genuinely
    /// shifted candidate above any permuted copy.
    #[test]
    fn permutation_separates_euclidean_from_wasserstein(a in vec_f32(16)) {
        let mut perm = a.clone();
        perm.reverse();
        let w = wasserstein_1d(&a, &perm);
        let e = euclidean(&a, &perm);
        prop_assert!(w < 1e-9, "permutation has W = {w}");
        prop_assert!(e >= w);
        let shifted: Vec<f32> = a.iter().map(|&x| x + 3.0).collect();
        let sel = most_dissimilar(
            DistanceMetric::Wasserstein, &a, &[perm, shifted], 1,
        );
        prop_assert_eq!(sel, vec![1]);
    }

    /// The QP integrator's output always satisfies every constraint
    /// (up to tolerance) and never errors on well-formed input.
    #[test]
    fn qp_output_satisfies_constraints(
        g in vec_f32(8),
        cons in prop::collection::vec(vec_f32(8), 1..5)
    ) {
        let r = integrate_gradient(&g, &cons, &QpConfig::default()).unwrap();
        for c in &cons {
            let d: f64 = c.iter().zip(&r.gradient)
                .map(|(&x, &y)| x as f64 * y as f64).sum();
            let cn: f64 = c.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
            let gn: f64 = r.gradient.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
            prop_assert!(d >= -1e-3 * (1.0 + cn * gn), "violated: {} (scale {})", d, cn * gn);
        }
        for &v in &r.dual {
            prop_assert!(v >= 0.0);
        }
    }

    /// Feasible inputs pass through the integrator unchanged.
    #[test]
    fn qp_identity_on_feasible(g in vec_f32(8)) {
        // A constraint equal to g itself is always satisfied (⟨g,g⟩ ≥ 0).
        let cons = vec![g.clone()];
        let r = integrate_gradient(&g, &cons, &QpConfig::default()).unwrap();
        prop_assert!(r.already_feasible);
        prop_assert_eq!(r.gradient, g);
    }
}
