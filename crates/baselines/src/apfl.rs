//! APFL — adaptive personalized federated learning \[9\].
//!
//! Each client keeps a *personal* model `v` next to the shared model `w`
//! and predicts with the mixture `ᾱ·v + (1−ᾱ)·w`; the mixing weight ᾱ is
//! learned per client by descending the mixture loss. Only `w`
//! participates in FedAvg.

use fedknow_data::ClientTask;
use fedknow_fl::trainer::evaluate_model;
use fedknow_fl::{FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;

/// APFL client.
pub struct ApflClient {
    /// Shared-model trainer (`w`, uploaded for aggregation).
    trainer: LocalTrainer,
    /// Personal parameters `v`.
    personal: Vec<f32>,
    /// Mixture weight ᾱ ∈ [0, 1].
    pub alpha: f32,
    /// Learning rate for ᾱ.
    alpha_lr: f32,
}

impl ApflClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        alpha0: f32,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        Self {
            trainer: LocalTrainer::new(template.instantiate(), opt, batch_size, image_shape),
            personal: template.init.clone(),
            alpha: alpha0.clamp(0.0, 1.0),
            alpha_lr: 0.01,
        }
    }

    /// `ᾱ·v + (1−ᾱ)·w` as a flat vector.
    fn mixed_params(&mut self) -> Vec<f32> {
        let w = self.trainer.model.flat_params();
        self.personal
            .iter()
            .zip(&w)
            .map(|(&v, &wi)| self.alpha * v + (1.0 - self.alpha) * wi)
            .collect()
    }
}

impl FclClient for ApflClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let (x, labels) = self.trainer.next_batch(rng);
        // 1. Shared model step (what FedAvg sees).
        let loss = self.trainer.compute_grads(&x, &labels);
        let lr = self.trainer.opt.next_lr() as f32;
        self.trainer.model.sgd_step(lr);

        // 2. Personal step: gradient of the mixture loss, applied to v
        //    (chain rule factor ᾱ) and to ᾱ itself.
        let w = self.trainer.model.flat_params();
        let mixed = self.mixed_params();
        self.trainer.model.set_flat_params(&mixed);
        let _ = self.trainer.compute_grads(&x, &labels);
        let g_mixed = self.trainer.model.flat_grads();
        self.trainer.model.set_flat_params(&w);
        // ∂L/∂ᾱ = ⟨g_mixed, v − w⟩.
        let mut dalpha = 0.0f32;
        for i in 0..self.personal.len() {
            let diff = self.personal[i] - w[i];
            dalpha += g_mixed[i] * diff;
            self.personal[i] -= lr * self.alpha * g_mixed[i];
        }
        self.alpha = (self.alpha - self.alpha_lr * dalpha).clamp(0.0, 1.0);

        IterationStats {
            loss: loss as f64,
            flops: 2 * self.trainer.iteration_flops(),
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], _rng: &mut StdRng) {
        self.trainer.model.set_flat_params(global);
    }

    fn finish_task(&mut self, _rng: &mut StdRng) {}

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        // Predict with the personalised mixture.
        let w = self.trainer.model.flat_params();
        let mixed = self.mixed_params();
        self.trainer.model.set_flat_params(&mixed);
        let image_shape = self.trainer.image_shape().to_vec();
        let acc = evaluate_model(&mut self.trainer.model, task, &image_shape);
        self.trainer.model.set_flat_params(&w);
        acc
    }

    fn method_name(&self) -> &'static str {
        "apfl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    #[test]
    fn personal_model_diverges_from_shared() {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(1);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        let mut c = ApflClient::new(&template, 0.5, 0.05, 1e-4, 8, vec![3, 8, 8]);
        let mut rng = seeded(1);
        c.start_task(&parts[0].tasks[0], &mut rng);
        for _ in 0..10 {
            c.train_iteration(&mut rng);
        }
        let w = c.upload().unwrap();
        assert_ne!(c.personal, w, "v and w should separate during training");
        assert!((0.0..=1.0).contains(&c.alpha));
    }

    #[test]
    fn evaluate_restores_shared_model() {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(1);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        let mut c = ApflClient::new(&template, 0.7, 0.05, 1e-4, 8, vec![3, 8, 8]);
        let mut rng = seeded(2);
        c.start_task(&parts[0].tasks[0], &mut rng);
        c.train_iteration(&mut rng);
        let before = c.upload().unwrap();
        let _ = c.evaluate(&parts[0].tasks[0]);
        assert_eq!(c.upload().unwrap(), before, "evaluate must not clobber w");
    }
}
