//! Weight-importance regularisation baselines: EWC \[24\], MAS \[2\] and
//! AGS-CL \[19\].
//!
//! All three share one mechanism: estimate how important each weight was
//! to previous tasks, then penalise moving important weights —
//! `∇L += λ · Ω ⊙ (w − w*)` with anchor `w*` at the last task boundary.
//! They differ in how Ω is estimated:
//!
//! * **EWC** — diagonal empirical Fisher: E[(∂ log p/∂w)²] over the
//!   task's data.
//! * **MAS** — sensitivity of the output norm: E[|∂‖f(x)‖²/∂w|],
//!   label-free.
//! * **AGS-CL** — the published method regularises *node groups* chosen
//!   by an adaptive group-sparsity criterion; we implement its
//!   operational core as a path-integral importance (accumulated
//!   loss-decrease attributed to each weight during training, as in
//!   synaptic-intelligence-style estimates AGS-CL builds on) with a
//!   stiff penalty. The stiff proximal term is what makes AGS-CL
//!   sensitive to large global-model jumps — reproducing the
//!   non-convergence under FedAvg the paper reports in §V-B.

use fedknow_data::ClientTask;
use fedknow_fl::{FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;

/// Which importance estimator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportanceKind {
    /// EWC: diagonal empirical Fisher.
    Fisher,
    /// MAS: output-norm sensitivity.
    Mas,
    /// AGS-CL: path-integral importance with a stiff penalty.
    PathIntegral,
}

impl ImportanceKind {
    fn method_name(&self) -> &'static str {
        match self {
            ImportanceKind::Fisher => "ewc",
            ImportanceKind::Mas => "mas",
            ImportanceKind::PathIntegral => "agscl",
        }
    }
}

/// EWC / MAS / AGS-CL client.
pub struct RegularizedClient {
    trainer: LocalTrainer,
    kind: ImportanceKind,
    /// Penalty strength λ.
    pub lambda: f32,
    /// Accumulated importance Ω (one entry per parameter).
    omega: Vec<f32>,
    /// Anchor weights w* from the last task boundary.
    anchor: Option<Vec<f32>>,
    /// Batches used to estimate importance at each task boundary.
    estimation_batches: usize,
    // Path-integral accumulators (AGS-CL).
    path_credit: Vec<f32>,
    task_start_params: Vec<f32>,
    pending_flops: u64,
}

impl RegularizedClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        kind: ImportanceKind,
        lambda: f32,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        let n = template.param_count();
        Self {
            trainer: LocalTrainer::new(template.instantiate(), opt, batch_size, image_shape),
            kind,
            lambda,
            omega: vec![0.0; n],
            anchor: None,
            estimation_batches: 4,
            path_credit: vec![0.0; n],
            task_start_params: Vec::new(),
            pending_flops: 0,
        }
    }

    /// Accumulated importance (tests).
    pub fn omega(&self) -> &[f32] {
        &self.omega
    }

    /// Estimate importance on the just-finished task's data and fold it
    /// into Ω.
    fn accumulate_importance(&mut self, rng: &mut StdRng) {
        match self.kind {
            ImportanceKind::Fisher => {
                for _ in 0..self.estimation_batches {
                    let (x, labels) = self.trainer.next_batch(rng);
                    self.trainer.compute_grads(&x, &labels);
                    let g = self.trainer.model.flat_grads();
                    for (o, gi) in self.omega.iter_mut().zip(&g) {
                        *o += gi * gi / self.estimation_batches as f32;
                    }
                    self.pending_flops += self.trainer.iteration_flops();
                }
            }
            ImportanceKind::Mas => {
                for _ in 0..self.estimation_batches {
                    let (x, _) = self.trainer.next_batch(rng);
                    self.trainer.model.zero_grad();
                    let logits = self.trainer.model.forward(x, true);
                    // ∂(½‖f(x)‖²)/∂logits = logits (mean over batch).
                    let b = logits.shape()[0] as f32;
                    let mut grad = logits;
                    grad.scale(1.0 / b);
                    self.trainer.model.backward(grad);
                    let g = self.trainer.model.flat_grads();
                    for (o, gi) in self.omega.iter_mut().zip(&g) {
                        *o += gi.abs() / self.estimation_batches as f32;
                    }
                    self.pending_flops += self.trainer.iteration_flops();
                }
            }
            ImportanceKind::PathIntegral => {
                // Ω += credit / (Δw² + ξ), then reset the accumulators.
                let now = self.trainer.model.flat_params();
                const XI: f32 = 1e-3;
                if !self.task_start_params.is_empty() {
                    for (i, om) in self.omega.iter_mut().enumerate() {
                        let dw = now[i] - self.task_start_params[i];
                        *om += (self.path_credit[i] / (dw * dw + XI)).max(0.0);
                    }
                }
                self.path_credit.iter_mut().for_each(|c| *c = 0.0);
            }
        }
    }
}

impl FclClient for RegularizedClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
        if self.kind == ImportanceKind::PathIntegral {
            self.task_start_params = self.trainer.model.flat_params();
        }
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let (x, labels) = self.trainer.next_batch(rng);
        let loss = self.trainer.compute_grads(&x, &labels);
        let mut update = self.trainer.model.flat_grads();
        // Importance penalty toward the anchor.
        if let Some(anchor) = &self.anchor {
            let params = self.trainer.model.flat_params();
            for i in 0..update.len() {
                update[i] += self.lambda * self.omega[i] * (params[i] - anchor[i]);
            }
        }
        let lr = self.trainer.opt.next_lr() as f32;
        if self.kind == ImportanceKind::PathIntegral {
            // Δw = −lr·update; credit_i += −g_i·Δw_i = lr·g_i·update_i.
            let g = &update;
            for (c, &gi) in self.path_credit.iter_mut().zip(g) {
                *c += lr * gi * gi;
            }
        }
        self.trainer.model.apply_update(&update, lr);
        let flops = self.trainer.iteration_flops() + self.pending_flops;
        self.pending_flops = 0;
        IterationStats {
            loss: loss as f64,
            flops,
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], _rng: &mut StdRng) {
        self.trainer.model.set_flat_params(global);
    }

    fn finish_task(&mut self, rng: &mut StdRng) {
        self.accumulate_importance(rng);
        // Normalise Ω to mean 1 and clip outliers so λ has the same
        // meaning across architectures (raw Fisher/MAS magnitudes differ
        // by orders of magnitude between a 6-layer CNN and a ResNet,
        // which would otherwise freeze one model and under-regularise
        // the other). Standard practice in EWC implementations.
        let mean =
            self.omega.iter().map(|&o| o as f64).sum::<f64>() / self.omega.len().max(1) as f64;
        if mean > 0.0 {
            let inv = (1.0 / mean) as f32;
            for o in &mut self.omega {
                *o = (*o * inv).min(10.0);
            }
        }
        self.anchor = Some(self.trainer.model.flat_params());
    }

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.trainer.evaluate_task(task)
    }

    fn retained_bytes(&self) -> u64 {
        // Ω and w* are each one f32 per parameter.
        match &self.anchor {
            Some(a) => (4 * (a.len() + self.omega.len())) as u64,
            None => 0,
        }
    }

    fn method_name(&self) -> &'static str {
        self.kind.method_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    fn setup(kind: ImportanceKind) -> (RegularizedClient, Vec<ClientTask>) {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(2);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        (
            RegularizedClient::new(&template, kind, 10.0, 0.05, 1e-4, 8, vec![3, 8, 8]),
            parts[0].tasks.clone(),
        )
    }

    #[test]
    fn fisher_importance_is_nonnegative_and_nonzero() {
        let (mut c, tasks) = setup(ImportanceKind::Fisher);
        let mut rng = seeded(1);
        c.start_task(&tasks[0], &mut rng);
        for _ in 0..5 {
            c.train_iteration(&mut rng);
        }
        c.finish_task(&mut rng);
        assert!(c.omega().iter().all(|&o| o >= 0.0));
        assert!(c.omega().iter().any(|&o| o > 0.0));
        assert!(c.retained_bytes() > 0);
    }

    #[test]
    fn mas_importance_without_labels() {
        let (mut c, tasks) = setup(ImportanceKind::Mas);
        let mut rng = seeded(2);
        c.start_task(&tasks[0], &mut rng);
        for _ in 0..5 {
            c.train_iteration(&mut rng);
        }
        c.finish_task(&mut rng);
        assert!(c.omega().iter().any(|&o| o > 0.0));
    }

    #[test]
    fn path_integral_accumulates_credit() {
        let (mut c, tasks) = setup(ImportanceKind::PathIntegral);
        let mut rng = seeded(3);
        c.start_task(&tasks[0], &mut rng);
        for _ in 0..5 {
            c.train_iteration(&mut rng);
        }
        c.finish_task(&mut rng);
        assert!(c.omega().iter().any(|&o| o > 0.0));
    }

    #[test]
    fn penalty_reduces_importance_weighted_drift() {
        // Run the same two-task sequence with and without the penalty and
        // compare Ω-weighted drift from the anchor: the regularised run
        // must protect important weights better.
        let drift_with_lambda = |lambda: f32| {
            let (mut c, tasks) = setup(ImportanceKind::Fisher);
            c.lambda = lambda;
            let mut rng = seeded(4);
            c.start_task(&tasks[0], &mut rng);
            for _ in 0..15 {
                c.train_iteration(&mut rng);
            }
            c.finish_task(&mut rng);
            let anchor = c.trainer.model.flat_params();
            let omega = c.omega().to_vec();
            c.start_task(&tasks[1], &mut rng);
            for _ in 0..15 {
                c.train_iteration(&mut rng);
            }
            let now = c.trainer.model.flat_params();
            let weighted: f64 = (0..anchor.len())
                .map(|i| omega[i] as f64 * ((now[i] - anchor[i]) as f64).powi(2))
                .sum();
            weighted
        };
        let free = drift_with_lambda(0.0);
        // Ω is normalised to mean 1 and clipped at 10, so λ = 1.5 keeps
        // lr·λ·Ω safely below the stability bound while still binding.
        let penalised = drift_with_lambda(1.5);
        assert!(
            penalised < free,
            "penalty failed to protect important weights: {penalised} !< {free}"
        );
    }
}
