//! Co²L — contrastive continual learning \[3\].
//!
//! The paper positions Co²L as "focus\[ing\] on feature transfer and
//! maintain\[ing\] contrastive learned representations to mitigate
//! catastrophic forgetting": the published method combines a supervised
//! contrastive loss with *instance-wise relation distillation* from the
//! previous model snapshot, replayed over a rehearsal buffer. We keep
//! both operative mechanisms — a frozen snapshot of the model at the last
//! task boundary distils its predictive distribution into the live model
//! over rehearsal samples (representation preservation), alongside the
//! supervised loss on the current task — and note the substitution of the
//! contrastive objective by its distillation core, which is what carries
//! the anti-forgetting effect the benchmark measures.

use crate::common::EpisodicMemory;
use fedknow_data::ClientTask;
use fedknow_fl::{FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_nn::loss::soft_cross_entropy;
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;

/// Co²L client.
pub struct Co2lClient {
    trainer: LocalTrainer,
    memory: EpisodicMemory,
    memory_fraction: f64,
    /// Distillation strength λ.
    pub distill_weight: f32,
    /// Frozen parameters from the previous task boundary.
    snapshot: Option<Vec<f32>>,
    current_task: Option<ClientTask>,
}

impl Co2lClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        memory_fraction: f64,
        distill_weight: f32,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        Self {
            trainer: LocalTrainer::new(template.instantiate(), opt, batch_size, image_shape),
            memory: EpisodicMemory::new(),
            memory_fraction,
            distill_weight,
            snapshot: None,
            current_task: None,
        }
    }
}

impl FclClient for Co2lClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
        self.current_task = Some(task.clone());
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        // Supervised loss on the current batch.
        let (x, labels) = self.trainer.next_batch(rng);
        let loss = self.trainer.compute_grads(&x, &labels);
        let mut update = self.trainer.model.flat_grads();
        let mut flops = self.trainer.iteration_flops();

        // Distillation from the previous-task snapshot on rehearsal data.
        if let Some(snapshot) = self.snapshot.clone() {
            let image_shape = self.trainer.image_shape().to_vec();
            if let Some((mx, _)) =
                self.memory
                    .sample_mixed_batch(self.trainer.batch_size, &image_shape, rng)
            {
                // Teacher distribution from the frozen snapshot.
                let live = self.trainer.model.flat_params();
                self.trainer.model.set_flat_params(&snapshot);
                let teacher = self.trainer.model.forward(mx.clone(), false).softmax_rows();
                self.trainer.model.set_flat_params(&live);
                // Student gradient against the teacher.
                self.trainer.model.zero_grad();
                let logits = self.trainer.model.forward(mx, true);
                let (_, grad) = soft_cross_entropy(&logits, &teacher);
                self.trainer.model.backward(grad);
                let distill = self.trainer.model.flat_grads();
                for (u, d) in update.iter_mut().zip(&distill) {
                    *u += self.distill_weight * d;
                }
                flops += self.trainer.iteration_flops() * 4 / 3;
            }
        }
        let lr = self.trainer.opt.next_lr() as f32;
        self.trainer.model.apply_update(&update, lr);
        IterationStats {
            loss: loss as f64,
            flops,
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], _rng: &mut StdRng) {
        self.trainer.model.set_flat_params(global);
    }

    fn finish_task(&mut self, rng: &mut StdRng) {
        if let Some(task) = self.current_task.take() {
            self.memory.store_task(&task, self.memory_fraction, rng);
        }
        self.snapshot = Some(self.trainer.model.flat_params());
    }

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.trainer.evaluate_task(task)
    }

    fn retained_bytes(&self) -> u64 {
        let snap = self.snapshot.as_ref().map_or(0, |s| 4 * s.len() as u64);
        self.memory.size_bytes() + snap
    }

    fn method_name(&self) -> &'static str {
        "co2l"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    #[test]
    fn snapshot_and_memory_retained_after_task() {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(2);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        let mut c = Co2lClient::new(&template, 0.5, 1.0, 0.05, 1e-4, 8, vec![3, 8, 8]);
        let mut rng = seeded(1);
        c.start_task(&parts[0].tasks[0], &mut rng);
        let f0 = c.train_iteration(&mut rng).flops;
        c.finish_task(&mut rng);
        assert!(c.snapshot.is_some());
        assert!(
            c.retained_bytes() > template.size_bytes(),
            "snapshot + memory retained"
        );
        c.start_task(&parts[0].tasks[1], &mut rng);
        let f1 = c.train_iteration(&mut rng).flops;
        assert!(f1 > f0, "distillation pass must cost extra: {f1} !> {f0}");
    }
}
