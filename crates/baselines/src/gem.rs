//! GEM — gradient episodic memory \[35\] (with the A-GEM refinement \[4\]
//! the paper cites alongside it).
//!
//! GEM stores a fraction of every past task's samples. At each iteration
//! it computes one gradient per past task from the stored samples and
//! projects the current gradient so its angle with each of them stays
//! acute — the same QP FedKNOW reuses, but fed by *real rehearsal
//! gradients* instead of restored ones, which is exactly the
//! storage-versus-knowledge trade-off the paper's Figure 10 probes.

use crate::common::EpisodicMemory;
use fedknow_data::ClientTask;
use fedknow_fl::{FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_math::qp::{integrate_gradient, QpConfig};
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;

/// GEM client with configurable rehearsal fraction (paper sweeps 10 % to
/// 100 % in Figure 10).
pub struct GemClient {
    trainer: LocalTrainer,
    memory: EpisodicMemory,
    /// Fraction of each task's samples kept in memory.
    pub memory_fraction: f64,
    qp: QpConfig,
    current_task: Option<ClientTask>,
}

impl GemClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        memory_fraction: f64,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        Self {
            trainer: LocalTrainer::new(template.instantiate(), opt, batch_size, image_shape),
            memory: EpisodicMemory::new(),
            memory_fraction,
            qp: QpConfig::default(),
            current_task: None,
        }
    }

    /// Stored rehearsal sample count (tests/benches).
    pub fn memory_samples(&self) -> usize {
        self.memory.total_samples()
    }
}

impl FclClient for GemClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
        self.current_task = Some(task.clone());
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let (x, labels) = self.trainer.next_batch(rng);
        let loss = self.trainer.compute_grads(&x, &labels);
        let g = self.trainer.model.flat_grads();
        let mut flops = self.trainer.iteration_flops();
        // One gradient per stored past task.
        let image_shape = self.trainer.image_shape().to_vec();
        let mut constraints = Vec::with_capacity(self.memory.num_tasks());
        for t in 0..self.memory.num_tasks() {
            if let Some((mx, mlabels)) =
                self.memory
                    .sample_task_batch(t, self.trainer.batch_size, &image_shape, rng)
            {
                self.trainer.compute_grads(&mx, &mlabels);
                constraints.push(self.trainer.model.flat_grads());
                flops += self.trainer.iteration_flops();
            }
        }
        let update = if constraints.is_empty() {
            g
        } else {
            integrate_gradient(&g, &constraints, &self.qp)
                .map(|r| r.gradient)
                .unwrap_or(g)
        };
        let lr = self.trainer.opt.next_lr() as f32;
        self.trainer.model.apply_update(&update, lr);
        IterationStats {
            loss: loss as f64,
            flops,
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], _rng: &mut StdRng) {
        self.trainer.model.set_flat_params(global);
    }

    fn finish_task(&mut self, rng: &mut StdRng) {
        if let Some(task) = self.current_task.take() {
            self.memory.store_task(&task, self.memory_fraction, rng);
        }
    }

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.trainer.evaluate_task(task)
    }

    fn retained_bytes(&self) -> u64 {
        self.memory.size_bytes()
    }

    fn method_name(&self) -> &'static str {
        "gem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    fn setup(tasks: usize, frac: f64) -> (GemClient, Vec<ClientTask>) {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(tasks);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        (
            GemClient::new(&template, frac, 0.05, 1e-4, 8, vec![3, 8, 8]),
            parts[0].tasks.clone(),
        )
    }

    #[test]
    fn memory_grows_per_task() {
        let (mut c, tasks) = setup(2, 0.5);
        let mut rng = seeded(1);
        for t in &tasks {
            c.start_task(t, &mut rng);
            c.train_iteration(&mut rng);
            c.finish_task(&mut rng);
        }
        assert_eq!(c.memory.num_tasks(), 2);
        assert!(c.retained_bytes() > 0);
    }

    #[test]
    fn second_task_iterations_cost_more_flops() {
        let (mut c, tasks) = setup(2, 0.5);
        let mut rng = seeded(2);
        c.start_task(&tasks[0], &mut rng);
        let base = c.train_iteration(&mut rng).flops;
        c.finish_task(&mut rng);
        c.start_task(&tasks[1], &mut rng);
        let with_memory = c.train_iteration(&mut rng).flops;
        assert!(
            with_memory > base,
            "{with_memory} !> {base}: GEM must pay per past task"
        );
    }

    #[test]
    fn memory_fraction_scales_retained_bytes() {
        let mut sizes = Vec::new();
        for frac in [0.1, 0.5, 1.0] {
            let (mut c, tasks) = setup(1, frac);
            let mut rng = seeded(3);
            c.start_task(&tasks[0], &mut rng);
            c.finish_task(&mut rng);
            sizes.push(c.retained_bytes());
        }
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }
}

/// A-GEM \[4\] — averaged GEM: instead of one constraint per past task,
/// a single constraint built from one averaged rehearsal gradient over
/// the whole memory. One extra forward/backward per iteration regardless
/// of the task count, at some retention cost — the efficiency/accuracy
/// trade GEM's authors proposed and the paper cites alongside GEM.
pub struct AGemClient {
    inner: GemClient,
}

impl AGemClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        memory_fraction: f64,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        Self {
            inner: GemClient::new(
                template,
                memory_fraction,
                lr,
                lr_decrease,
                bs_at_least_one(batch_size),
                image_shape,
            ),
        }
    }
}

fn bs_at_least_one(bs: usize) -> usize {
    bs.max(1)
}

impl FclClient for AGemClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.inner.start_task(task, rng);
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let (x, labels) = self.inner.trainer.next_batch(rng);
        let loss = self.inner.trainer.compute_grads(&x, &labels);
        let g = self.inner.trainer.model.flat_grads();
        let mut flops = self.inner.trainer.iteration_flops();
        // One averaged gradient over a mixed memory batch.
        let image_shape = self.inner.trainer.image_shape().to_vec();
        let constraint = self
            .inner
            .memory
            .sample_mixed_batch(self.inner.trainer.batch_size, &image_shape, rng)
            .map(|(mx, mlabels)| {
                self.inner.trainer.compute_grads(&mx, &mlabels);
                flops += self.inner.trainer.iteration_flops();
                self.inner.trainer.model.flat_grads()
            });
        let update = match constraint {
            Some(c) => integrate_gradient(&g, std::slice::from_ref(&c), &self.inner.qp)
                .map(|r| r.gradient)
                .unwrap_or(g),
            None => g,
        };
        let lr = self.inner.trainer.opt.next_lr() as f32;
        self.inner.trainer.model.apply_update(&update, lr);
        IterationStats {
            loss: loss as f64,
            flops,
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        self.inner.upload()
    }

    fn receive_global(&mut self, global: &[f32], rng: &mut StdRng) {
        self.inner.receive_global(global, rng);
    }

    fn finish_task(&mut self, rng: &mut StdRng) {
        self.inner.finish_task(rng);
    }

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.inner.evaluate(task)
    }

    fn retained_bytes(&self) -> u64 {
        self.inner.retained_bytes()
    }

    fn method_name(&self) -> &'static str {
        "agem"
    }
}

#[cfg(test)]
mod agem_tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    #[test]
    fn agem_pays_constant_memory_cost_per_iteration() {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(3);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        let mut c = AGemClient::new(&template, 0.5, 0.05, 1e-4, 8, vec![3, 8, 8]);
        let mut rng = seeded(1);
        let mut flops_per_task = Vec::new();
        for t in &parts[0].tasks {
            c.start_task(t, &mut rng);
            flops_per_task.push(c.train_iteration(&mut rng).flops);
            c.finish_task(&mut rng);
        }
        // With ≥1 past task the cost is exactly one extra pass — it does
        // not keep growing like GEM's.
        assert!(flops_per_task[1] > flops_per_task[0]);
        assert_eq!(
            flops_per_task[1], flops_per_task[2],
            "A-GEM cost must not grow with tasks"
        );
    }
}
