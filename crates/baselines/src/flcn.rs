//! FLCN — federated learning with continual local training \[57\].
//!
//! The published method keeps a sample buffer *at the server* and uses it
//! when updating the global model so newly initialised rounds do not
//! forget. In this client-side simulation each client ships 10 % of every
//! task's samples to the server (charged on the wire at task start,
//! exactly the traffic the real system pays) and the server-side
//! rehearsal update is applied at the same point of the protocol it would
//! land: right after aggregation, the received global model takes a few
//! corrective steps on the buffered samples before local training
//! continues.

use crate::common::EpisodicMemory;
use fedknow_data::ClientTask;
use fedknow_fl::{CommBytes, FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;

/// FLCN client.
pub struct FlcnClient {
    trainer: LocalTrainer,
    /// Samples shipped to the server (the server-side buffer's view from
    /// this client).
    server_buffer: EpisodicMemory,
    sample_fraction: f64,
    /// Corrective steps on the buffer after each aggregation.
    rehearsal_steps: usize,
    current_task: Option<ClientTask>,
    /// Bytes of samples to charge at the next round (shipped once per
    /// task).
    pending_upload_bytes: u64,
    pending_flops: u64,
}

impl FlcnClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        sample_fraction: f64,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        Self {
            trainer: LocalTrainer::new(template.instantiate(), opt, batch_size, image_shape),
            server_buffer: EpisodicMemory::new(),
            sample_fraction,
            rehearsal_steps: 2,
            current_task: None,
            pending_upload_bytes: 0,
            pending_flops: 0,
        }
    }
}

impl FclClient for FlcnClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
        self.current_task = Some(task.clone());
        // Ship this task's contribution to the server buffer now; the
        // bytes are charged with the first round of the task.
        let before = self.server_buffer.size_bytes();
        self.server_buffer
            .store_task(task, self.sample_fraction, rng);
        self.pending_upload_bytes = self.server_buffer.size_bytes() - before;
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let loss = self.trainer.sgd_iteration(rng);
        let flops = self.trainer.iteration_flops() + self.pending_flops;
        self.pending_flops = 0;
        IterationStats {
            loss: loss as f64,
            flops,
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], rng: &mut StdRng) {
        self.trainer.model.set_flat_params(global);
        // Server-side rehearsal correction of the aggregated model.
        let image_shape = self.trainer.image_shape().to_vec();
        for _ in 0..self.rehearsal_steps {
            if let Some((x, labels)) =
                self.server_buffer
                    .sample_mixed_batch(self.trainer.batch_size, &image_shape, rng)
            {
                self.trainer.compute_grads(&x, &labels);
                let lr = self.trainer.opt.current_lr() as f32;
                self.trainer.model.sgd_step(lr * 0.5);
                self.pending_flops += self.trainer.iteration_flops();
            }
        }
        // The per-task sample shipment has now been charged (the
        // simulator reads extra_comm during the round that just ended).
        self.pending_upload_bytes = 0;
    }

    fn finish_task(&mut self, _rng: &mut StdRng) {
        self.current_task = None;
    }

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.trainer.evaluate_task(task)
    }

    fn extra_comm(&self) -> CommBytes {
        CommBytes {
            up: self.pending_upload_bytes,
            down: 0,
        }
    }

    fn retained_bytes(&self) -> u64 {
        // The buffer lives on the server; the client itself retains
        // nothing (that is FLCN's selling point and privacy problem).
        0
    }

    fn method_name(&self) -> &'static str {
        "flcn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    fn setup() -> (FlcnClient, Vec<ClientTask>) {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(2);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        (
            FlcnClient::new(&template, 0.1, 0.05, 1e-4, 8, vec![3, 8, 8]),
            parts[0].tasks.clone(),
        )
    }

    #[test]
    fn samples_shipped_once_per_task() {
        let (mut c, tasks) = setup();
        let mut rng = seeded(1);
        c.start_task(&tasks[0], &mut rng);
        let first = c.extra_comm();
        assert!(first.up > 0, "task samples must be charged");
        assert_eq!(first.down, 0);
        // The charge is consumed at the end of the first round.
        let g = vec![0.0f32; c.upload().unwrap().len()];
        c.receive_global(&g, &mut rng);
        assert_eq!(
            c.extra_comm().up,
            0,
            "samples must be charged only once per task"
        );
        c.start_task(&tasks[1], &mut rng);
        assert!(c.extra_comm().up > 0, "a new task ships a new contribution");
    }

    #[test]
    fn rehearsal_runs_after_aggregation() {
        let (mut c, tasks) = setup();
        let mut rng = seeded(2);
        c.start_task(&tasks[0], &mut rng);
        c.train_iteration(&mut rng);
        let before = c.upload().unwrap();
        let global = vec![0.1f32; before.len()];
        c.receive_global(&global, &mut rng);
        let after = c.upload().unwrap();
        assert_ne!(
            after, global,
            "rehearsal must move the model off the raw global"
        );
    }

    #[test]
    fn client_retains_nothing_locally() {
        let (mut c, tasks) = setup();
        let mut rng = seeded(3);
        c.start_task(&tasks[0], &mut rng);
        c.finish_task(&mut rng);
        assert_eq!(c.retained_bytes(), 0);
    }
}
