//! FedAvg \[37\] — the plain federated baseline: local SGD, full-model
//! aggregation, no continual-learning mechanism at all. Fast to converge
//! on the current task, but forgets previous tasks (the paper's Figure 4
//! discussion).

use fedknow_data::ClientTask;
use fedknow_fl::{FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;

/// Plain FedAvg client.
pub struct FedAvgClient {
    trainer: LocalTrainer,
}

impl FedAvgClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        Self {
            trainer: LocalTrainer::new(template.instantiate(), opt, batch_size, image_shape),
        }
    }
}

impl FclClient for FedAvgClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let loss = self.trainer.sgd_iteration(rng);
        IterationStats {
            loss: loss as f64,
            flops: self.trainer.iteration_flops(),
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], _rng: &mut StdRng) {
        self.trainer.model.set_flat_params(global);
    }

    fn finish_task(&mut self, _rng: &mut StdRng) {}

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.trainer.evaluate_task(task)
    }

    fn method_name(&self) -> &'static str {
        "fedavg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    #[test]
    fn fedavg_learns_but_retains_nothing() {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(1);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        let mut c = FedAvgClient::new(&template, 0.05, 1e-4, 8, vec![3, 8, 8]);
        let mut rng = seeded(2);
        c.start_task(&parts[0].tasks[0], &mut rng);
        for _ in 0..60 {
            c.train_iteration(&mut rng);
        }
        let acc = c.evaluate(&parts[0].tasks[0]);
        assert!(acc > 2.0 / parts[0].tasks[0].classes.len() as f64);
        assert_eq!(
            c.retained_bytes(),
            0,
            "FedAvg must retain no continual state"
        );
    }

    #[test]
    fn receive_global_overwrites_model() {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        let mut c = FedAvgClient::new(&template, 0.05, 0.0, 8, vec![3, 8, 8]);
        let g = vec![0.5f32; template.param_count()];
        let mut rng = seeded(0);
        c.receive_global(&g, &mut rng);
        assert_eq!(c.upload().unwrap(), g);
    }
}
