//! Method registry: build any of the 12 evaluated methods by name with
//! shared hyper-parameters — the single entry point the experiment
//! harness uses so every comparison is wired identically.

use crate::apfl::ApflClient;
use crate::bcn::BcnClient;
use crate::co2l::Co2lClient;
use crate::fedavg::FedAvgClient;
use crate::fedrep::FedRepClient;
use crate::fedweit::FedWeitClient;
use crate::flcn::FlcnClient;
use crate::gem::{AGemClient, GemClient};
use crate::regularized::{ImportanceKind, RegularizedClient};
use fedknow::{FedKnowClient, FedKnowConfig};
use fedknow_fl::{FclClient, ModelTemplate};
use serde::{Deserialize, Serialize};

/// All 12 methods of the paper's comparison (11 baselines + FedKNOW),
/// plus the FedWEIT own-only ablation of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// FedKNOW (this paper).
    FedKnow,
    /// Gradient episodic memory.
    Gem,
    /// Balanced continual learning.
    Bcn,
    /// Contrastive continual learning.
    Co2l,
    /// Elastic weight consolidation.
    Ewc,
    /// Memory-aware synapses.
    Mas,
    /// Adaptive group-sparsity continual learning.
    AgsCl,
    /// Plain FedAvg.
    FedAvg,
    /// Adaptive personalized federated learning.
    Apfl,
    /// Shared representation / personal head.
    FedRep,
    /// Federated continual local training.
    Flcn,
    /// Federated weighted inter-client transfer.
    FedWeit,
    /// FedWEIT using only its own adaptive weights (Figure 10 ablation).
    FedWeitOwn,
    /// A-GEM: averaged-gradient episodic memory (efficiency variant the
    /// paper cites with GEM).
    AGem,
}

impl Method {
    /// The 12-method comparison set of Figure 4 (excludes the ablation).
    pub const COMPARISON: [Method; 12] = [
        Method::FedKnow,
        Method::Gem,
        Method::Bcn,
        Method::Co2l,
        Method::Ewc,
        Method::Mas,
        Method::AgsCl,
        Method::FedAvg,
        Method::Apfl,
        Method::FedRep,
        Method::Flcn,
        Method::FedWeit,
    ];

    /// Stable report name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::FedKnow => "fedknow",
            Method::Gem => "gem",
            Method::Bcn => "bcn",
            Method::Co2l => "co2l",
            Method::Ewc => "ewc",
            Method::Mas => "mas",
            Method::AgsCl => "agscl",
            Method::FedAvg => "fedavg",
            Method::Apfl => "apfl",
            Method::FedRep => "fedrep",
            Method::Flcn => "flcn",
            Method::FedWeit => "fedweit",
            Method::FedWeitOwn => "fedweit-own",
            Method::AGem => "agem",
        }
    }
}

/// Hyper-parameters shared across methods plus the method-specific knobs
/// the paper sets in §V-B.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodConfig {
    /// Base learning rate (paper: 0.001/0.0008, scaled for the synthetic
    /// substrate).
    pub lr: f64,
    /// Learning-rate decrease per step (paper: 1e-4/1e-5).
    pub lr_decrease: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Rehearsal fraction for memory methods (paper: 10 %).
    pub memory_fraction: f64,
    /// EWC penalty (paper: 40000, scaled to this loss landscape).
    pub ewc_lambda: f32,
    /// MAS penalty (paper: 100, scaled).
    pub mas_lambda: f32,
    /// AGS-CL penalty.
    pub agscl_lambda: f32,
    /// FedKNOW configuration (ρ, k, metric, ...).
    pub fedknow: FedKnowConfig,
    /// FedWEIT adaptive fraction.
    pub fedweit_fraction: f64,
}

impl Default for MethodConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            lr_decrease: 1e-4,
            batch_size: 16,
            memory_fraction: 0.10,
            ewc_lambda: 1.0,
            mas_lambda: 1.0,
            agscl_lambda: 3.0,
            fedknow: FedKnowConfig::default(),
            fedweit_fraction: 0.10,
        }
    }
}

/// Instantiate one client of the given method. `image_shape` is
/// `[C, H, W]` of the dataset.
pub fn build_client(
    method: Method,
    template: &ModelTemplate,
    cfg: &MethodConfig,
    image_shape: Vec<usize>,
) -> Box<dyn FclClient> {
    let (lr, dec, bs) = (cfg.lr, cfg.lr_decrease, cfg.batch_size);
    match method {
        Method::FedKnow => {
            let mut fk = cfg.fedknow.clone();
            fk.local_lr = lr;
            fk.global_lr = lr;
            fk.lr_decrease = dec;
            Box::new(FedKnowClient::new(template, fk, bs, image_shape))
        }
        Method::Gem => Box::new(GemClient::new(
            template,
            cfg.memory_fraction,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::Bcn => Box::new(BcnClient::new(
            template,
            cfg.memory_fraction,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::Co2l => Box::new(Co2lClient::new(
            template,
            cfg.memory_fraction,
            1.0,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::Ewc => Box::new(RegularizedClient::new(
            template,
            ImportanceKind::Fisher,
            cfg.ewc_lambda,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::Mas => Box::new(RegularizedClient::new(
            template,
            ImportanceKind::Mas,
            cfg.mas_lambda,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::AgsCl => Box::new(RegularizedClient::new(
            template,
            ImportanceKind::PathIntegral,
            cfg.agscl_lambda,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::FedAvg => Box::new(FedAvgClient::new(template, lr, dec, bs, image_shape)),
        Method::Apfl => Box::new(ApflClient::new(template, 0.5, lr, dec, bs, image_shape)),
        Method::FedRep => Box::new(FedRepClient::new(template, lr, dec, bs, image_shape)),
        Method::Flcn => Box::new(FlcnClient::new(
            template,
            cfg.memory_fraction,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::FedWeit => Box::new(FedWeitClient::new(
            template,
            cfg.fedweit_fraction,
            false,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::FedWeitOwn => Box::new(FedWeitClient::new(
            template,
            cfg.fedweit_fraction,
            true,
            lr,
            dec,
            bs,
            image_shape,
        )),
        Method::AGem => Box::new(AGemClient::new(
            template,
            cfg.memory_fraction,
            lr,
            dec,
            bs,
            image_shape,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_nn::ModelKind;

    #[test]
    fn every_method_builds_and_names_itself() {
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, 10, 1.0, 1);
        let cfg = MethodConfig::default();
        for m in Method::COMPARISON {
            let c = build_client(m, &template, &cfg, vec![3, 8, 8]);
            assert_eq!(c.method_name(), m.name(), "name mismatch for {m:?}");
        }
        let own = build_client(Method::FedWeitOwn, &template, &cfg, vec![3, 8, 8]);
        assert_eq!(own.method_name(), "fedweit-own");
    }

    #[test]
    fn comparison_set_has_twelve_methods() {
        assert_eq!(Method::COMPARISON.len(), 12);
        let mut names: Vec<&str> = Method::COMPARISON.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "duplicate method names");
    }
}
