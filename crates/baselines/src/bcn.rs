//! BCN — balanced continual learning \[42\].
//!
//! The paper summarises BCN as "retain\[ing\] the previous training samples
//! and us\[ing\] them to maximize the data distribution among different
//! tasks and minimize the model training errors". We implement that as
//! balanced rehearsal: every minibatch is half current-task samples and
//! half samples drawn uniformly across all stored past tasks, so the
//! effective training distribution stays balanced over tasks while the
//! training error on the mixture is minimised directly. (The published
//! method derives the mixture from a bi-level generalisation/forgetting
//! trade-off; the balanced-mixture rehearsal is its operational core and
//! the property the paper's comparison exercises.)

use crate::common::EpisodicMemory;
use fedknow_data::ClientTask;
use fedknow_fl::{FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_math::Tensor;
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;

/// BCN client.
pub struct BcnClient {
    trainer: LocalTrainer,
    memory: EpisodicMemory,
    memory_fraction: f64,
    current_task: Option<ClientTask>,
}

impl BcnClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        memory_fraction: f64,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        Self {
            trainer: LocalTrainer::new(template.instantiate(), opt, batch_size, image_shape),
            memory: EpisodicMemory::new(),
            memory_fraction,
            current_task: None,
        }
    }
}

/// Concatenate two batches along the batch axis.
fn concat_batches(a: (Tensor, Vec<usize>), b: (Tensor, Vec<usize>)) -> (Tensor, Vec<usize>) {
    let (xa, mut la) = a;
    let (xb, lb) = b;
    let mut shape = xa.shape().to_vec();
    shape[0] += xb.shape()[0];
    let mut data = xa.into_vec();
    data.extend_from_slice(xb.data());
    la.extend(lb);
    (Tensor::from_vec(data, &shape), la)
}

impl FclClient for BcnClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
        self.current_task = Some(task.clone());
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let current = self.trainer.next_batch(rng);
        let image_shape = self.trainer.image_shape().to_vec();
        let half = (self.trainer.batch_size / 2).max(1);
        let (x, labels) = match self.memory.sample_mixed_batch(half, &image_shape, rng) {
            Some(past) => concat_batches(current, past),
            None => current,
        };
        let loss = self.trainer.compute_grads(&x, &labels);
        let lr = self.trainer.opt.next_lr() as f32;
        self.trainer.model.sgd_step(lr);
        // The mixed batch is up to 1.5× the configured batch.
        let flops = 3 * self.trainer.model.flops(x.shape()[0]);
        IterationStats {
            loss: loss as f64,
            flops,
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], _rng: &mut StdRng) {
        self.trainer.model.set_flat_params(global);
    }

    fn finish_task(&mut self, rng: &mut StdRng) {
        if let Some(task) = self.current_task.take() {
            self.memory.store_task(&task, self.memory_fraction, rng);
        }
    }

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.trainer.evaluate_task(task)
    }

    fn retained_bytes(&self) -> u64 {
        self.memory.size_bytes()
    }

    fn method_name(&self) -> &'static str {
        "bcn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    #[test]
    fn rehearsal_batches_enlarge_after_first_task() {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(2);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        let mut c = BcnClient::new(&template, 0.5, 0.05, 1e-4, 8, vec![3, 8, 8]);
        let mut rng = seeded(1);
        c.start_task(&parts[0].tasks[0], &mut rng);
        let f0 = c.train_iteration(&mut rng).flops;
        c.finish_task(&mut rng);
        c.start_task(&parts[0].tasks[1], &mut rng);
        let f1 = c.train_iteration(&mut rng).flops;
        assert!(f1 > f0, "mixed batch must cost more: {f1} !> {f0}");
        assert!(c.retained_bytes() > 0);
    }

    #[test]
    fn concat_batches_stacks() {
        let a = (Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 1, 2]), vec![0]);
        let b = (Tensor::from_vec(vec![3.0, 4.0], &[1, 1, 1, 2]), vec![1]);
        let (x, l) = concat_batches(a, b);
        assert_eq!(x.shape(), &[2, 1, 1, 2]);
        assert_eq!(l, vec![0, 1]);
    }
}
