//! FedWEIT \[58\] — federated weighted inter-client transfer.
//!
//! FedWEIT decomposes each layer's weights into a *base* part (shared,
//! FedAvg-aggregated) and sparse *task-adaptive* parts. Every client
//! retains its adaptive weights per task, the server collects **all**
//! clients' adaptive weights, and a client learning a new task downloads
//! everyone's adaptives and blends them into training — which is exactly
//! why its communication and memory grow with `clients × tasks` (the
//! scalability weakness FedKNOW targets, §II and §V-C).
//!
//! Operationalisation here (each point mirrors a published mechanism):
//! * the working weights are `w = base + a` with `a` re-sparsified
//!   *per layer* to the top-`q` magnitudes of `w − base` at every upload
//!   — per-layer sparsification is what damages parameter-poor layers
//!   (ResNet downsamples), the failure mode the paper highlights;
//! * `a` of the finished task is retained locally (task-conditioned
//!   evaluation restores `base + a_t` for task `t`);
//! * every round the client publishes its current adaptive through the
//!   server and receives all other clients' (the [`Payload`] channel),
//!   blending a small attention-weighted average into its weights
//!   (weighted inter-client transfer) and caching them (server-mirrored
//!   knowledge — the memory that OOMs a 2 GB Raspberry Pi);
//! * an L2 pull of `w` toward `base` stands in for the published
//!   sparsity/drift regularisers.

use fedknow_data::ClientTask;
use fedknow_fl::{FclClient, IterationStats, LocalTrainer, ModelTemplate, Payload};
use fedknow_math::SparseVec;
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// FedWEIT client.
pub struct FedWeitClient {
    trainer: LocalTrainer,
    /// Global base weights (mirrors the last aggregated model).
    base: Vec<f32>,
    /// Adaptive sparsity: fraction of each layer kept.
    pub adaptive_fraction: f64,
    /// Regulariser pulling working weights toward the base.
    drift_lambda: f32,
    /// Attention weight for foreign adaptives.
    transfer_weight: f32,
    /// Own retained adaptives, keyed by task id.
    own_adaptives: HashMap<usize, SparseVec>,
    /// Foreign adaptives cached from the server (client, tag) → weights.
    foreign: HashMap<(usize, u64), SparseVec>,
    /// When true, ignore foreign adaptives (the paper's Figure 10
    /// "own-only" ablation).
    pub own_only: bool,
    current_task_id: usize,
    /// Per-layer segment boundaries of the flat vector.
    segments: Vec<(usize, usize)>,
}

impl FedWeitClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        adaptive_fraction: f64,
        own_only: bool,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        let model = template.instantiate();
        let segments = model.layout().iter().map(|s| (s.offset, s.len)).collect();
        Self {
            trainer: LocalTrainer::new(model, opt, batch_size, image_shape),
            base: template.init.clone(),
            adaptive_fraction,
            drift_lambda: 0.01,
            transfer_weight: 0.1,
            own_adaptives: HashMap::new(),
            foreign: HashMap::new(),
            own_only,
            current_task_id: 0,
            segments,
        }
    }

    /// Per-layer top-`q` sparsification of `w − base` (FedWEIT masks per
    /// layer, which is what starves small layers).
    fn current_adaptive(&mut self) -> SparseVec {
        let w = self.trainer.model.flat_params();
        let n = w.len();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &(off, len) in &self.segments {
            let diff: Vec<f32> = (0..len).map(|i| w[off + i] - self.base[off + i]).collect();
            let keep = ((len as f64 * self.adaptive_fraction).round() as usize).min(len);
            let local = SparseVec::top_k_by_magnitude(&diff, keep);
            for (&i, &v) in local.indices().iter().zip(local.values()) {
                indices.push((off + i as usize) as u32);
                values.push(v);
            }
        }
        SparseVec::new(n, indices, values)
    }

    /// Number of retained adaptive sets (own + foreign) — tests.
    pub fn knowledge_counts(&self) -> (usize, usize) {
        (self.own_adaptives.len(), self.foreign.len())
    }
}

impl FclClient for FedWeitClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
        self.current_task_id = task.task_id;
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let (x, labels) = self.trainer.next_batch(rng);
        let loss = self.trainer.compute_grads(&x, &labels);
        let mut update = self.trainer.model.flat_grads();
        // Drift regulariser toward the shared base.
        let params = self.trainer.model.flat_params();
        for i in 0..update.len() {
            update[i] += self.drift_lambda * (params[i] - self.base[i]);
        }
        let lr = self.trainer.opt.next_lr() as f32;
        self.trainer.model.apply_update(&update, lr);
        IterationStats {
            loss: loss as f64,
            flops: self.trainer.iteration_flops(),
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        // Upload the base contribution: working weights minus the sparse
        // adaptive part (the adaptive travels separately as a payload).
        let adaptive = self.current_adaptive();
        let mut contribution = self.trainer.model.flat_params();
        for (&i, &v) in adaptive.indices().iter().zip(adaptive.values()) {
            contribution[i as usize] -= v;
        }
        Some(contribution)
    }

    fn receive_global(&mut self, global: &[f32], _rng: &mut StdRng) {
        // New base; working weights = base + own current adaptive.
        let adaptive = self.current_adaptive();
        self.base = global.to_vec();
        let mut w = global.to_vec();
        for (&i, &v) in adaptive.indices().iter().zip(adaptive.values()) {
            w[i as usize] += v;
        }
        self.trainer.model.set_flat_params(&w);
    }

    fn payload_out(&mut self) -> Vec<Payload> {
        vec![Payload {
            from_client: 0, // filled by the simulator
            tag: self.current_task_id as u64,
            sparse: self.current_adaptive(),
        }]
    }

    fn payloads_in(&mut self, payloads: &[Payload], _rng: &mut StdRng) {
        // Cache everyone's adaptives (server-mirrored knowledge).
        let mut fresh: Vec<&Payload> = Vec::new();
        for p in payloads {
            self.foreign
                .insert((p.from_client, p.tag), p.sparse.clone());
            fresh.push(p);
        }
        if self.own_only || fresh.is_empty() {
            return;
        }
        // Weighted inter-client transfer: blend a small attention-
        // weighted average of the received adaptives into the weights.
        let mut w = self.trainer.model.flat_params();
        let scale = self.transfer_weight / fresh.len() as f32;
        for p in fresh {
            for (&i, &v) in p.sparse.indices().iter().zip(p.sparse.values()) {
                w[i as usize] += scale * v;
            }
        }
        self.trainer.model.set_flat_params(&w);
    }

    fn finish_task(&mut self, _rng: &mut StdRng) {
        let adaptive = self.current_adaptive();
        self.own_adaptives.insert(self.current_task_id, adaptive);
    }

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        // Task-conditioned model: base + that task's retained adaptive.
        match self.own_adaptives.get(&task.task_id) {
            Some(a) => {
                let w = self.trainer.model.flat_params();
                let mut cond = self.base.clone();
                for (&i, &v) in a.indices().iter().zip(a.values()) {
                    cond[i as usize] += v;
                }
                self.trainer.model.set_flat_params(&cond);
                let image_shape = self.trainer.image_shape().to_vec();
                let acc = fedknow_fl::trainer::evaluate_model(
                    &mut self.trainer.model,
                    task,
                    &image_shape,
                );
                self.trainer.model.set_flat_params(&w);
                acc
            }
            None => self.trainer.evaluate_task(task),
        }
    }

    fn retained_bytes(&self) -> u64 {
        let own: u64 = self
            .own_adaptives
            .values()
            .map(|a| a.size_bytes() as u64)
            .sum();
        let foreign: u64 = self.foreign.values().map(|a| a.size_bytes() as u64).sum();
        own + foreign
    }

    fn method_name(&self) -> &'static str {
        if self.own_only {
            "fedweit-own"
        } else {
            "fedweit"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    fn setup() -> (FedWeitClient, Vec<ClientTask>) {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(2);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        (
            FedWeitClient::new(&template, 0.1, false, 0.05, 1e-4, 8, vec![3, 8, 8]),
            parts[0].tasks.clone(),
        )
    }

    #[test]
    fn adaptive_is_per_layer_sparse() {
        let (mut c, tasks) = setup();
        let mut rng = seeded(1);
        c.start_task(&tasks[0], &mut rng);
        for _ in 0..5 {
            c.train_iteration(&mut rng);
        }
        let a = c.current_adaptive();
        let n = c.trainer.model.param_count();
        assert!(a.nnz() > 0);
        assert!(
            a.nnz() <= n / 5,
            "adaptive should be sparse: {} of {n}",
            a.nnz()
        );
    }

    #[test]
    fn upload_plus_adaptive_reconstructs_weights() {
        let (mut c, tasks) = setup();
        let mut rng = seeded(2);
        c.start_task(&tasks[0], &mut rng);
        for _ in 0..3 {
            c.train_iteration(&mut rng);
        }
        let w = c.trainer.model.flat_params();
        let a = c.current_adaptive();
        let up = c.upload().unwrap();
        let mut rebuilt = up;
        for (&i, &v) in a.indices().iter().zip(a.values()) {
            rebuilt[i as usize] += v;
        }
        for (x, y) in rebuilt.iter().zip(&w) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn foreign_adaptives_accumulate_and_cost_memory() {
        let (mut c, tasks) = setup();
        let mut rng = seeded(3);
        c.start_task(&tasks[0], &mut rng);
        c.train_iteration(&mut rng);
        let n = c.trainer.model.param_count();
        let fake =
            |seed: usize| SparseVec::new(n, vec![seed as u32, (seed + 10) as u32], vec![0.5, -0.5]);
        let payloads: Vec<Payload> = (0..4)
            .map(|cl| Payload {
                from_client: cl,
                tag: 0,
                sparse: fake(cl),
            })
            .collect();
        let before = c.retained_bytes();
        c.payloads_in(&payloads, &mut rng);
        assert_eq!(c.knowledge_counts().1, 4);
        assert!(
            c.retained_bytes() > before,
            "foreign knowledge must cost memory"
        );
    }

    #[test]
    fn evaluation_is_task_conditioned_after_finish() {
        let (mut c, tasks) = setup();
        let mut rng = seeded(4);
        c.start_task(&tasks[0], &mut rng);
        for _ in 0..30 {
            c.train_iteration(&mut rng);
        }
        c.finish_task(&mut rng);
        assert_eq!(c.knowledge_counts().0, 1);
        // Evaluate must not clobber the working weights.
        let before = c.trainer.model.flat_params();
        let _ = c.evaluate(&tasks[0]);
        assert_eq!(c.trainer.model.flat_params(), before);
    }

    #[test]
    fn payload_out_reports_current_adaptive() {
        let (mut c, tasks) = setup();
        let mut rng = seeded(5);
        c.start_task(&tasks[1], &mut rng);
        c.train_iteration(&mut rng);
        let p = c.payload_out();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].tag, tasks[1].task_id as u64);
        assert!(p[0].size_bytes() > 0);
    }
}
