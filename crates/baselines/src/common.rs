//! Shared infrastructure for the baseline implementations.

use fedknow_data::{to_tensor, ClientTask, Sample};
use fedknow_math::rng::sample_indices;
use fedknow_math::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Episodic memory: a per-task buffer holding a fraction of each learned
/// task's training samples (GEM/BCN/Co2L-style rehearsal).
#[derive(Debug, Clone, Default)]
pub struct EpisodicMemory {
    per_task: Vec<Vec<Sample>>,
}

impl EpisodicMemory {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `fraction` of the task's training samples (at least one).
    pub fn store_task(&mut self, task: &ClientTask, fraction: f64, rng: &mut StdRng) {
        let n = task.train.len();
        let take = ((n as f64 * fraction).round() as usize).clamp(1, n.max(1));
        let idx = sample_indices(rng, n, take);
        self.per_task
            .push(idx.into_iter().map(|i| task.train[i].clone()).collect());
    }

    /// Number of tasks with stored samples.
    pub fn num_tasks(&self) -> usize {
        self.per_task.len()
    }

    /// Total stored samples.
    pub fn total_samples(&self) -> usize {
        self.per_task.iter().map(|v| v.len()).sum()
    }

    /// Bytes retained (4 bytes per pixel plus the label).
    pub fn size_bytes(&self) -> u64 {
        self.per_task
            .iter()
            .flat_map(|t| t.iter())
            .map(|s| (s.x.len() * 4 + 8) as u64)
            .sum()
    }

    /// A batch of up to `n` samples from task `t`'s buffer.
    pub fn sample_task_batch(
        &self,
        t: usize,
        n: usize,
        image_shape: &[usize],
        rng: &mut StdRng,
    ) -> Option<(Tensor, Vec<usize>)> {
        let buf = self.per_task.get(t)?;
        if buf.is_empty() {
            return None;
        }
        let take = n.min(buf.len());
        let idx = sample_indices(rng, buf.len(), take);
        let refs: Vec<&Sample> = idx.iter().map(|&i| &buf[i]).collect();
        Some(to_tensor(&refs, image_shape))
    }

    /// A batch of up to `n` samples drawn uniformly across *all* stored
    /// tasks (balanced rehearsal).
    pub fn sample_mixed_batch(
        &self,
        n: usize,
        image_shape: &[usize],
        rng: &mut StdRng,
    ) -> Option<(Tensor, Vec<usize>)> {
        if self.per_task.is_empty() || self.total_samples() == 0 {
            return None;
        }
        let mut refs: Vec<&Sample> = Vec::with_capacity(n);
        for _ in 0..n {
            let t = rng.gen_range(0..self.per_task.len());
            let buf = &self.per_task[t];
            if buf.is_empty() {
                continue;
            }
            refs.push(&buf[rng.gen_range(0..buf.len())]);
        }
        if refs.is_empty() {
            return None;
        }
        Some(to_tensor(&refs, image_shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;

    fn task() -> ClientTask {
        let spec = DatasetSpec::cifar100().scaled(0.5, 8).with_tasks(2);
        let d = generate(&spec, 1);
        partition(&d, 1, &PartitionConfig::default(), 1)[0].tasks[0].clone()
    }

    #[test]
    fn store_respects_fraction() {
        let t = task();
        let mut mem = EpisodicMemory::new();
        let mut rng = seeded(1);
        mem.store_task(&t, 0.5, &mut rng);
        let expected = ((t.train.len() as f64) * 0.5).round() as usize;
        assert_eq!(mem.total_samples(), expected);
        assert_eq!(mem.num_tasks(), 1);
        assert!(mem.size_bytes() > 0);
    }

    #[test]
    fn tiny_fraction_keeps_at_least_one() {
        let t = task();
        let mut mem = EpisodicMemory::new();
        let mut rng = seeded(2);
        mem.store_task(&t, 1e-9, &mut rng);
        assert_eq!(mem.total_samples(), 1);
    }

    #[test]
    fn task_batches_come_from_right_task() {
        let spec = DatasetSpec::cifar100().scaled(0.5, 8).with_tasks(2);
        let d = generate(&spec, 1);
        let tasks = &partition(&d, 1, &PartitionConfig::default(), 1)[0].tasks;
        let mut mem = EpisodicMemory::new();
        let mut rng = seeded(3);
        mem.store_task(&tasks[0], 0.5, &mut rng);
        mem.store_task(&tasks[1], 0.5, &mut rng);
        let (_, labels) = mem.sample_task_batch(1, 4, &[3, 8, 8], &mut rng).unwrap();
        for l in labels {
            assert!(tasks[1].classes.contains(&l));
        }
    }

    #[test]
    fn mixed_batch_spans_tasks_eventually() {
        let spec = DatasetSpec::cifar100().scaled(0.5, 8).with_tasks(2);
        let d = generate(&spec, 1);
        let tasks = &partition(&d, 1, &PartitionConfig::default(), 1)[0].tasks;
        let mut mem = EpisodicMemory::new();
        let mut rng = seeded(4);
        mem.store_task(&tasks[0], 0.5, &mut rng);
        mem.store_task(&tasks[1], 0.5, &mut rng);
        let mut seen_t0 = false;
        let mut seen_t1 = false;
        for _ in 0..10 {
            let (_, labels) = mem.sample_mixed_batch(8, &[3, 8, 8], &mut rng).unwrap();
            for l in labels {
                seen_t0 |= tasks[0].classes.contains(&l);
                seen_t1 |= tasks[1].classes.contains(&l);
            }
        }
        assert!(seen_t0 && seen_t1, "mixed batches never spanned both tasks");
    }

    #[test]
    fn empty_memory_returns_none() {
        let mem = EpisodicMemory::new();
        let mut rng = seeded(5);
        assert!(mem.sample_mixed_batch(4, &[3, 8, 8], &mut rng).is_none());
        assert!(mem.sample_task_batch(0, 4, &[3, 8, 8], &mut rng).is_none());
    }
}
