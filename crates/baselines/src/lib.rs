//! The 11 baseline methods of the paper's evaluation (§V-A), all
//! implemented against the same [`fedknow_fl::FclClient`] interface as
//! FedKNOW so every comparison runs in an identical federated loop.
//!
//! * Continual learning: [`gem::GemClient`] (gradient episodic memory),
//!   [`bcn::BcnClient`] (balanced rehearsal), [`co2l::Co2lClient`]
//!   (representation-preserving distillation), [`regularized`] (EWC, MAS
//!   and AGS-CL as three configurations of weight-importance
//!   regularisation).
//! * Federated learning: [`fedavg::FedAvgClient`], [`apfl::ApflClient`]
//!   (adaptive global/local mixture), [`fedrep::FedRepClient`] (shared
//!   representation, personal head).
//! * Federated continual learning: [`flcn::FlcnClient`] (server-side
//!   sample rehearsal) and [`fedweit::FedWeitClient`] (base + task-
//!   adaptive weight decomposition with all-client knowledge exchange).
//!
//! Where a baseline's exact published form is impractical to reproduce
//! bit-for-bit, the implementation keeps the *mechanism class* the paper
//! contrasts against (rehearsal volume, importance regularisation,
//! decomposition + exchange) — each file documents its simplifications.

pub mod apfl;
pub mod bcn;
pub mod co2l;
pub mod common;
pub mod factory;
pub mod fedavg;
pub mod fedrep;
pub mod fedweit;
pub mod flcn;
pub mod gem;
pub mod regularized;

pub use factory::{build_client, Method};
