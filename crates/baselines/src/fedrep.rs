//! FedRep \[7\] — shared representation, personal head.
//!
//! FedRep "divides a model into presentation layers and head layers, and
//! only communicates presentation layers in federated learning, while
//! adaptively training model weights in each client" (§V-A). Here the
//! head is the final linear layer (weight + bias); everything before it
//! is the representation. Uploads carry the full vector (the server
//! averages it all), but the client adopts only the representation part
//! of the global model — its head stays personal — and only the
//! representation bytes are charged on the wire.

use fedknow_data::ClientTask;
use fedknow_fl::{CommBytes, FclClient, IterationStats, LocalTrainer, ModelTemplate};
use fedknow_nn::optim::{LrSchedule, Sgd};
use rand::rngs::StdRng;

/// FedRep client.
pub struct FedRepClient {
    trainer: LocalTrainer,
    /// Flat-vector offset where the head (last linear layer) begins.
    head_offset: usize,
}

impl FedRepClient {
    /// Build from the shared template.
    pub fn new(
        template: &ModelTemplate,
        lr: f64,
        lr_decrease: f64,
        batch_size: usize,
        image_shape: Vec<usize>,
    ) -> Self {
        let opt = Sgd::new(
            lr,
            LrSchedule::LinearDecrease {
                decrease: lr_decrease,
            },
        );
        let model = template.instantiate();
        // The head is the trailing run of linear segments (weight+bias of
        // the classifier).
        let layout = model.layout();
        let mut head_offset = model.param_count();
        for seg in layout.iter().rev() {
            if seg.name.starts_with("linear") {
                head_offset = seg.offset;
            } else {
                break;
            }
        }
        Self {
            trainer: LocalTrainer::new(model, opt, batch_size, image_shape),
            head_offset,
        }
    }

    /// Where the personal head begins in the flat vector (tests).
    pub fn head_offset(&self) -> usize {
        self.head_offset
    }
}

impl FclClient for FedRepClient {
    fn start_task(&mut self, task: &ClientTask, rng: &mut StdRng) {
        self.trainer.set_task(task, rng);
    }

    fn train_iteration(&mut self, rng: &mut StdRng) -> IterationStats {
        let loss = self.trainer.sgd_iteration(rng);
        IterationStats {
            loss: loss as f64,
            flops: self.trainer.iteration_flops(),
        }
    }

    fn upload(&mut self) -> Option<Vec<f32>> {
        Some(self.trainer.model.flat_params())
    }

    fn receive_global(&mut self, global: &[f32], _rng: &mut StdRng) {
        // Adopt the representation; keep the personal head.
        let mut params = self.trainer.model.flat_params();
        params[..self.head_offset].copy_from_slice(&global[..self.head_offset]);
        self.trainer.model.set_flat_params(&params);
    }

    fn finish_task(&mut self, _rng: &mut StdRng) {}

    fn evaluate(&mut self, task: &ClientTask) -> f64 {
        self.trainer.evaluate_task(task)
    }

    fn base_comm(&self, full_model_bytes: u64) -> CommBytes {
        // Only the representation travels.
        let frac = self.head_offset as f64 / self.trainer.model.param_count() as f64;
        let bytes = (full_model_bytes as f64 * frac) as u64;
        CommBytes {
            up: bytes,
            down: bytes,
        }
    }

    fn method_name(&self) -> &'static str {
        "fedrep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedknow_data::{generate::generate, partition, DatasetSpec, PartitionConfig};
    use fedknow_math::rng::seeded;
    use fedknow_nn::ModelKind;

    fn client() -> (FedRepClient, ClientTask) {
        let spec = DatasetSpec::cifar100().scaled(0.3, 8).with_tasks(1);
        let d = generate(&spec, 1);
        let parts = partition(&d, 1, &PartitionConfig::default(), 1);
        let template = ModelTemplate::new(ModelKind::SixCnn, 3, spec.total_classes(), 1.0, 3);
        (
            FedRepClient::new(&template, 0.05, 1e-4, 8, vec![3, 8, 8]),
            parts[0].tasks[0].clone(),
        )
    }

    #[test]
    fn head_offset_covers_final_classifier() {
        let (c, _) = client();
        let n = c.trainer.model.param_count();
        assert!(c.head_offset() < n);
        // SixCNN head: the last two linear layers form the trailing
        // linear run (hidden 32 → classes), so the head is non-trivial.
        assert!(n - c.head_offset() > 0);
    }

    #[test]
    fn receive_global_preserves_personal_head() {
        let (mut c, task) = client();
        let mut rng = seeded(1);
        c.start_task(&task, &mut rng);
        for _ in 0..3 {
            c.train_iteration(&mut rng);
        }
        let before = c.upload().unwrap();
        let global = vec![0.25f32; before.len()];
        c.receive_global(&global, &mut rng);
        let after = c.upload().unwrap();
        let h = c.head_offset();
        assert!(
            after[..h].iter().all(|&v| v == 0.25),
            "representation must be adopted"
        );
        assert_eq!(&after[h..], &before[h..], "head must stay personal");
    }

    #[test]
    fn base_comm_is_smaller_than_full_model() {
        let (c, _) = client();
        let full = 1_000_000u64;
        let b = c.base_comm(full);
        assert!(b.up < full && b.up > 0);
        assert_eq!(b.up, b.down);
    }
}
